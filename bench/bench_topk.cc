// Measures the top-K selection paths (src/select) against the full-sort
// baseline: for K/N ratios of 0.1%, 1% and 10% the same input is answered
// three ways — full sort then truncate, bounded dual-heap selection, and
// run generation plus the run-pruning merge. All three run over a
// real-time simulated disk (default profile), so wall time reflects the
// I/O each plan actually issues: the dual heap reads the input once and
// writes K records; the pruning merge still writes every run but clamps
// what the merge reads back. Reported per row: wall and simulated
// seconds, bytes moved, pruning counters, and speedup over the full sort
// (which is run once — truncating its output is free and K-independent).
//
// Expected shape: dual-heap wins by an order of magnitude whenever K fits
// in memory. Run pruning moves strictly fewer bytes than the full merge,
// but its boundary probes are small random reads — on this seek-dominated
// disk profile the saved bandwidth does not buy back the probe seeks, so
// its wall time only beats the full sort on bandwidth-bound devices or
// when runs cover disjoint key bands (see the external_sorter_test banded
// case). That tradeoff is the point of reporting both plans side by side.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "select/topk.h"

namespace twrs {
namespace bench {
namespace {

struct TopKCase {
  std::string name;
  uint64_t limit = 0;  ///< 0 = full sort baseline
  TopKStrategy strategy = TopKStrategy::kAuto;
};

struct TopKRun {
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  ExternalSortResult result;
};

TopKRun RunOne(PosixEnv* posix, const std::string& input,
               const std::string& dir, size_t memory, const TopKCase& c) {
  DiskModelConfig disk;
  disk.realtime = true;
  SimDiskEnv env(posix, disk);

  ExternalSortOptions options;
  options.memory_records = memory;
  options.twrs = TwoWayOptions::Recommended(memory, 1);
  options.temp_dir = dir + "/tmp";
  options.limit = c.limit;
  options.topk_strategy = c.strategy;
  ExternalSorter sorter(&env, options);

  FileRecordSource source(&env, input);
  env.model().Reset();
  Stopwatch wall;
  TopKRun run;
  CheckOk(sorter.Sort(&source, dir + "/out", &run.result), c.name.c_str());
  run.wall_seconds = wall.ElapsedSeconds();
  run.sim_seconds = env.model().SimulatedSeconds();

  uint64_t count = 0;
  CheckOk(VerifySortedFile(posix, dir + "/out", &count, nullptr), "verify");
  const uint64_t expected =
      c.limit > 0 ? std::min(c.limit, run.result.run_gen.total_records)
                  : run.result.run_gen.total_records;
  if (count != expected) {
    fprintf(stderr, "FATAL %s wrote %llu records, want %llu\n",
            c.name.c_str(), static_cast<unsigned long long>(count),
            static_cast<unsigned long long>(expected));
    abort();
  }
  CheckOk(posix->RemoveFile(dir + "/out"), "cleanup out");
  return run;
}

void Run() {
  const std::string dir = ScratchDir();
  const uint64_t records = Scaled(400000);
  const size_t memory = static_cast<size_t>(Scaled(8192));

  PosixEnv posix;
  WorkloadOptions workload;
  workload.num_records = records;
  workload.seed = 1;
  const std::string input = dir + "/input";
  CheckOk(WriteWorkloadToFile(&posix, Dataset::kRandom, workload, input),
          "write workload");

  printf("== Top-K selection vs full sort (src/select) ==\n");
  printf(
      "%llu random records, memory %zu records, real-time simulated "
      "disk\n\n",
      static_cast<unsigned long long>(records), memory);

  // The baseline is K-independent: one full sort serves every ratio.
  const TopKCase baseline{"full-sort", 0, TopKStrategy::kAuto};
  const TopKRun full = RunOne(&posix, input, dir, memory, baseline);

  TablePrinter table({"K", "strategy", "wall s", "sim s", "MiB read",
                      "MiB written", "runs pruned", "rec pruned",
                      "speedup"});
  const auto add = [&](uint64_t limit, const TopKCase& c,
                       const TopKRun& run) {
    const double speedup =
        run.wall_seconds > 0 ? full.wall_seconds / run.wall_seconds : 0.0;
    table.AddRow(
        {std::to_string(limit), c.name,
         TablePrinter::Num(run.wall_seconds, 3),
         TablePrinter::Num(run.sim_seconds, 3),
         TablePrinter::Num(
             static_cast<double>(run.result.bytes_read) / (1024.0 * 1024),
             2),
         TablePrinter::Num(static_cast<double>(run.result.bytes_written) /
                               (1024.0 * 1024),
                           2),
         std::to_string(run.result.merge.runs_pruned),
         std::to_string(run.result.merge.records_pruned),
         TablePrinter::Num(speedup, 2)});

    JsonEntry entry;
    entry.Str("bench_case", "topk")
        .Str("strategy", c.name)
        .Str("order", "asc")
        .Int("limit", limit)
        .Int("records", records)
        .Int("memory_records", memory)
        .Int("num_runs", run.result.run_gen.num_runs())
        .Num("wall_seconds", run.wall_seconds)
        .Num("sim_seconds", run.sim_seconds)
        .Int("bytes_read", run.result.bytes_read)
        .Int("bytes_written", run.result.bytes_written)
        .Int("runs_pruned", run.result.merge.runs_pruned)
        .Int("records_pruned", run.result.merge.records_pruned)
        .Num("speedup_vs_full_sort", speedup);
    JsonReporter::Global().Add(entry);
  };
  add(0, baseline, full);

  for (const double ratio : {0.001, 0.01, 0.1}) {
    const uint64_t k = static_cast<uint64_t>(
        static_cast<double>(records) * ratio);
    for (const TopKCase& c :
         {TopKCase{"dual-heap", k, TopKStrategy::kDualHeap},
          TopKCase{"run-pruning-merge", k,
                   TopKStrategy::kRunPruningMerge}}) {
      add(k, c, RunOne(&posix, input, dir, memory, c));
    }
  }
  table.Print(std::cout);

  CheckOk(posix.RemoveFile(input), "cleanup input");
  RemoveTreeBestEffort(&posix, dir);
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
