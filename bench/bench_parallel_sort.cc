// Measures the pipelined execution subsystem (src/exec): a bench_fig6_6-sized
// full sort on the simulated-disk env, serial vs parallel. The parallel path
// overlaps run flushing with heap work (AsyncWritableFile), keeps read-ahead
// blocks in flight per merge input (PrefetchingSequentialFile), and
// dispatches independent same-level merges onto the thread pool. Output is
// verified identical (count + checksum) between the two paths; the
// interesting column is the wall-clock speedup.

#include <algorithm>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  const std::string dir = ScratchDir();
  const uint64_t records = Scaled(1000000);
  const size_t memory = static_cast<size_t>(Scaled(10000));
  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());

  // A real-time emulated disk, scaled ~10x faster than the paper's 2010
  // drive so the bench stays quick: the sort actually waits out its
  // simulated I/O, which is what gives the pipelined path latency to hide.
  DiskModelConfig disk;
  disk.realtime = true;
  disk.seek_seconds = 0.0008;
  disk.bandwidth_bytes_per_second = 1024.0 * 1024 * 1024;

  printf("== Parallel external sort: serial vs pipelined (src/exec) ==\n");
  printf(
      "input = %llu records, memory = %zu records, fan-in = 10,\n"
      "real-time emulated disk (%.1f ms seek, %.0f MiB/s)\n\n",
      static_cast<unsigned long long>(records), memory,
      disk.seek_seconds * 1000,
      disk.bandwidth_bytes_per_second / (1024.0 * 1024));

  TablePrinter table({"threads", "total s", "run gen s", "merge s", "runs",
                      "speedup"});
  double serial_seconds = 0.0;
  for (size_t threads : {size_t{0}, size_t{2}, size_t{4}, hw}) {
    TimedSortSpec spec;
    spec.dataset = Dataset::kRandom;
    spec.records = records;
    spec.memory = memory;
    spec.scratch_dir = dir;
    spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
    spec.parallel.worker_threads = threads;
    spec.parallel.prefetch_blocks = threads == 0 ? 0 : 2;
    // This bench measures scaling per pool size, so each row spawns its
    // own worker_threads-sized pool instead of borrowing the shared
    // executor (whose capacity is fixed process-wide).
    spec.parallel.dedicated_pool = true;
    spec.disk = disk;
    spec.label = threads == 0 ? "serial" : "parallel";
    const TimedSort timed = RunTimedSort(spec);
    if (threads == 0) serial_seconds = timed.total_seconds;
    table.AddRow({std::to_string(threads),
                  TablePrinter::Num(timed.total_seconds, 3),
                  TablePrinter::Num(timed.run_gen_seconds, 3),
                  TablePrinter::Num(timed.total_seconds -
                                        timed.run_gen_seconds, 3),
                  std::to_string(timed.num_runs),
                  TablePrinter::Num(
                      timed.total_seconds > 0
                          ? serial_seconds / timed.total_seconds
                          : 0.0, 2)});
  }
  table.Print(std::cout);
  printf(
      "\nExpected shape: >= 1.15x total speedup with 2+ worker threads; the\n"
      "merge phase parallelizes across same-level leaf merges while run\n"
      "generation gains come from overlapping run flushes with heap work.\n");

  // Final-merge thread sweep: worker count fixed at hw, the last pass split
  // into P concurrent partial merges over key-domain partitions (each
  // writing its byte range of the output through a RangeMergeSink). P = 1
  // is the serial final pass the other rows above already used. The sweep
  // runs on a flash-like profile (50 us positioning) rather than the
  // rotating-disk model: splitter sampling and boundary search pay a fixed
  // number of positioned probes, so a 0.8 ms seek disk is exactly where a
  // partitioned last pass should NOT be used — the win comes on devices
  // where positioning is cheap and the serial loser tree is CPU-bound.
  DiskModelConfig flash = disk;
  flash.seek_seconds = 0.00005;
  printf("\n== Final-merge partition sweep (P partial merges, %zu workers, "
         "flash-like disk) ==\n\n", hw);
  TablePrinter fm_table({"fm threads", "total s", "run gen s", "merge s",
                         "runs", "speedup"});
  double fm_serial_seconds = 0.0;
  std::vector<size_t> fm_counts;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, hw}) {
    if (std::find(fm_counts.begin(), fm_counts.end(), threads) ==
        fm_counts.end()) {
      fm_counts.push_back(threads);
    }
  }
  for (size_t fm_threads : fm_counts) {
    TimedSortSpec spec;
    spec.dataset = Dataset::kRandom;
    spec.records = records;
    spec.memory = memory;
    spec.scratch_dir = dir;
    spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
    spec.parallel.worker_threads = hw;
    spec.parallel.prefetch_blocks = 2;
    spec.parallel.final_merge_threads = fm_threads;
    spec.parallel.dedicated_pool = true;
    spec.disk = flash;
    spec.label = fm_threads <= 1 ? "final-merge-serial"
                                 : "final-merge-partitioned";
    const TimedSort timed = RunTimedSort(spec);
    if (fm_threads == 1) fm_serial_seconds = timed.total_seconds;
    fm_table.AddRow({std::to_string(fm_threads),
                     TablePrinter::Num(timed.total_seconds, 3),
                     TablePrinter::Num(timed.run_gen_seconds, 3),
                     TablePrinter::Num(timed.total_seconds -
                                           timed.run_gen_seconds, 3),
                     std::to_string(timed.num_runs),
                     TablePrinter::Num(
                         timed.total_seconds > 0
                             ? fm_serial_seconds / timed.total_seconds
                             : 0.0, 2)});
  }
  fm_table.Print(std::cout);
  printf(
      "\nExpected shape: the merge column shrinks as P grows until the\n"
      "emulated disk's bandwidth, not the single loser tree, is the\n"
      "bottleneck; output bytes are identical at every P.\n");

  // I/O backend sweep: the same sort on the REAL filesystem, posix
  // (pump-thread decorators) vs io_uring (kernel rings, thin decorators).
  // Serial rows isolate the backends' raw write/read paths; pipelined rows
  // pit the uring Env's native overlap against the posix pump threads the
  // capability gates replace. Output identity across every cell is pinned
  // by checksum — a divergent backend aborts the bench.
  printf("\n== I/O backend sweep: posix vs io_uring (real filesystem) ==\n");
  if (!IoUringEnv::IsSupported()) {
    printf("io_uring unavailable, sweep skipped: %s\n",
           IoUringEnv::UnsupportedReason().c_str());
    return;
  }
  printf("\n");
  TablePrinter io_table({"backend", "threads", "total s", "run gen s",
                         "merge s", "vs posix"});
  uint64_t ref_count = 0;
  KeyChecksum ref_sum;
  bool have_ref = false;
  for (size_t threads : {size_t{0}, hw}) {
    double posix_seconds = 0.0;
    for (IoBackend backend : {IoBackend::kPosix, IoBackend::kUring}) {
      TimedSortSpec spec;
      spec.dataset = Dataset::kRandom;
      spec.records = records;
      spec.memory = memory;
      spec.scratch_dir = dir;
      spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
      spec.parallel.worker_threads = threads;
      spec.parallel.prefetch_blocks = threads == 0 ? 0 : 2;
      spec.parallel.dedicated_pool = true;
      spec.label = threads == 0 ? "backend-serial" : "backend-pipelined";
      uint64_t count = 0;
      KeyChecksum sum;
      const TimedSort timed = RunBackendTimedSort(spec, backend, &count, &sum);
      if (!have_ref) {
        ref_count = count;
        ref_sum = sum;
        have_ref = true;
      } else if (count != ref_count || !(sum == ref_sum)) {
        fprintf(stderr, "FATAL %s output differs from posix baseline\n",
                IoBackendName(backend));
        abort();
      }
      if (backend == IoBackend::kPosix) posix_seconds = timed.total_seconds;
      io_table.AddRow({IoBackendName(backend), std::to_string(threads),
                       TablePrinter::Num(timed.total_seconds, 3),
                       TablePrinter::Num(timed.run_gen_seconds, 3),
                       TablePrinter::Num(timed.total_seconds -
                                             timed.run_gen_seconds, 3),
                       TablePrinter::Num(
                           timed.total_seconds > 0
                               ? posix_seconds / timed.total_seconds
                               : 0.0, 2)});
    }
  }
  io_table.Print(std::cout);
  printf(
      "\nExpected shape: uring >= 1.0x vs posix on the write-heavy run\n"
      "generation phase; the ring batches submissions where the posix path\n"
      "pays a pump-thread handoff (or a blocking write when serial) per\n"
      "block. Outputs are byte-identical across backends by construction.\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
