// Reproduces Figure 5.4 of the paper: run length relative to memory as a
// function of the buffer size, for random input. The paper finds a linear
// correlation — dedicating x% of memory to buffers costs about x% of run
// length, because buffers cannot predict random data.

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  const size_t memory = static_cast<size_t>(Scaled(4000));
  const uint64_t records = Scaled(400000);
  printf("== Figure 5.4: run length vs buffer size (random input) ==\n");
  printf("memory = %zu records, input = %llu records\n\n", memory,
         static_cast<unsigned long long>(records));

  TablePrinter table({"buffer %", "run length / memory", "paper trend"});
  const double fractions[] = {0.0002, 0.002, 0.02, 0.05, 0.10, 0.20};
  for (double fraction : fractions) {
    double total = 0.0;
    const int seeds = 3;
    for (int seed = 1; seed <= seeds; ++seed) {
      TwoWayOptions options = TwoWayOptions::Recommended(memory, seed);
      options.buffer_fraction = fraction;
      WorkloadOptions workload;
      workload.num_records = records;
      workload.seed = static_cast<uint64_t>(seed);
      total += Count2wrs(options, Dataset::kRandom, workload)
                   .AverageRunLengthRelative(memory);
    }
    const double measured = total / seeds;
    const double paper_trend = 2.0 * (1.0 - fraction);
    table.AddRow({TablePrinter::Num(100.0 * fraction, 2),
                  TablePrinter::Num(measured, 3),
                  TablePrinter::Num(paper_trend, 3)});
  }
  table.Print(std::cout);
  printf(
      "\nExpected shape: ~2.0 at tiny buffers, decreasing linearly with the\n"
      "memory ceded to buffers (paper: 'a configuration with 2%% of the\n"
      "memory dedicated to buffers reduces the run length by just 2%%').\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
