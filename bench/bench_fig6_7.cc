// Reproduces Figure 6.7 of the paper: run generation and total sorting
// time for REVERSE SORTED input as a function of input size. This is RS's
// worst case (memory-sized runs) and 2WRS's best (one run); the paper
// measures a constant ~2.5x speedup with parallel scaling trends.

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  const std::string dir = ScratchDir();
  const size_t memory = static_cast<size_t>(Scaled(10000));
  printf("== Figure 6.7: reverse sorted input, time vs input size ==\n");
  printf("memory = %zu records\n\n", memory);

  TablePrinter table({"records", "RS total s", "2WRS total s", "RS runs",
                      "2WRS runs", "speedup", "RS sim s", "2WRS sim s",
                      "sim speedup"});
  for (uint64_t records : {125000, 250000, 500000, 1000000}) {
    TimedSortSpec spec;
    spec.dataset = Dataset::kReverseSorted;
    spec.records = Scaled(records);
    spec.memory = memory;
    spec.scratch_dir = dir;
    spec.algorithm = RunGenAlgorithm::kReplacementSelection;
    const TimedSort rs = RunTimedSort(spec);
    spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
    const TimedSort twrs = RunTimedSort(spec);
    table.AddRow({std::to_string(Scaled(records)),
                  TablePrinter::Num(rs.total_seconds, 3),
                  TablePrinter::Num(twrs.total_seconds, 3),
                  std::to_string(rs.num_runs), std::to_string(twrs.num_runs),
                  TablePrinter::Num(rs.total_seconds / twrs.total_seconds, 2),
                  TablePrinter::Num(rs.sim_total_seconds, 2),
                  TablePrinter::Num(twrs.sim_total_seconds, 2),
                  TablePrinter::Num(
                      rs.sim_total_seconds / twrs.sim_total_seconds, 2)});
  }
  table.Print(std::cout);
  printf(
      "\nExpected shape (paper): run generation takes similar time for both,\n"
      "but 2WRS produces one run (Theorem 4) so its merge phase is a plain\n"
      "copy, while RS merges input/memory runs — a sustained ~2.5x total\n"
      "speedup with parallel scaling curves.\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
