// Micro-benchmarks of the data-structure substrate: binary heap, the
// single-array DoubleHeap, the loser tree, and the median tracker.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/input_buffer.h"
#include "heap/binary_heap.h"
#include "heap/double_heap.h"
#include "heap/heapsort.h"
#include "merge/loser_tree.h"
#include "util/random.h"

namespace twrs {
namespace {

void BM_BinaryHeapPushPop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Random rng(1);
  std::vector<Key> keys(n);
  for (Key& k : keys) k = static_cast<Key>(rng.Next());
  for (auto _ : state) {
    BinaryHeap<Key, std::less<Key>> heap;
    heap.Reserve(n);
    for (Key k : keys) heap.Push(k);
    Key sink = 0;
    while (!heap.empty()) sink ^= heap.Pop();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 2);
}
BENCHMARK(BM_BinaryHeapPushPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_HeapSortVsStdSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool use_std = state.range(1) != 0;
  Random rng(2);
  std::vector<Key> keys(n);
  for (Key& k : keys) k = static_cast<Key>(rng.Next());
  for (auto _ : state) {
    std::vector<Key> copy = keys;
    if (use_std) {
      std::sort(copy.begin(), copy.end());
    } else {
      HeapSort(&copy);
    }
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(use_std ? "std::sort" : "heapsort");
}
BENCHMARK(BM_HeapSortVsStdSort)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1});

void BM_DoubleHeapReplacement(benchmark::State& state) {
  // The inner loop of 2WRS: pop one side, push a replacement.
  const size_t capacity = static_cast<size_t>(state.range(0));
  Random rng(3);
  DoubleHeap heap(capacity);
  while (!heap.Full()) {
    heap.Push(rng.OneIn2() ? HeapSide::kBottom : HeapSide::kTop,
              TaggedRecord{static_cast<Key>(rng.Uniform(1 << 30)), 0});
  }
  for (auto _ : state) {
    const HeapSide side = heap.Empty(HeapSide::kBottom) ? HeapSide::kTop
                          : heap.Empty(HeapSide::kTop)
                              ? HeapSide::kBottom
                              : (rng.OneIn2() ? HeapSide::kBottom
                                              : HeapSide::kTop);
    TaggedRecord record = heap.Pop(side);
    benchmark::DoNotOptimize(record);
    record.key = static_cast<Key>(rng.Uniform(1 << 30));
    heap.Push(side, record);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DoubleHeapReplacement)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// Ablation (DESIGN.md §2.2): the paper's single-array DoubleHeap versus the
// naive layout of two independently allocated heaps.
void BM_TwoVectorDoubleHeapReplacement(benchmark::State& state) {
  struct TaggedBefore {
    bool top;
    bool operator()(const TaggedRecord& a, const TaggedRecord& b) const {
      if (a.run != b.run) return a.run < b.run;
      return top ? a.key < b.key : a.key > b.key;
    }
  };
  const size_t capacity = static_cast<size_t>(state.range(0));
  Random rng(3);
  BinaryHeap<TaggedRecord, TaggedBefore> bottom{TaggedBefore{false}};
  BinaryHeap<TaggedRecord, TaggedBefore> top{TaggedBefore{true}};
  while (bottom.size() + top.size() < capacity) {
    auto& side = rng.OneIn2() ? bottom : top;
    side.Push(TaggedRecord{static_cast<Key>(rng.Uniform(1 << 30)), 0});
  }
  for (auto _ : state) {
    auto& side = bottom.empty() ? top
                 : top.empty()  ? bottom
                                : (rng.OneIn2() ? bottom : top);
    TaggedRecord record = side.Pop();
    benchmark::DoNotOptimize(record);
    record.key = static_cast<Key>(rng.Uniform(1 << 30));
    side.Push(record);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoVectorDoubleHeapReplacement)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17);

void BM_LoserTreeMerge(benchmark::State& state) {
  const size_t ways = static_cast<size_t>(state.range(0));
  const size_t per_way = 1 << 14;
  Random rng(4);
  std::vector<std::vector<Key>> inputs(ways);
  for (auto& way : inputs) {
    way.resize(per_way);
    for (Key& k : way) k = static_cast<Key>(rng.Uniform(1 << 30));
    std::sort(way.begin(), way.end());
  }
  for (auto _ : state) {
    LoserTree tree(ways);
    std::vector<size_t> pos(ways, 0);
    for (size_t w = 0; w < ways; ++w) tree.SetInitial(w, inputs[w][0]);
    tree.Build();
    Key sink = 0;
    while (!tree.Exhausted()) {
      const size_t w = tree.WinnerIndex();
      sink ^= tree.WinnerKey();
      if (++pos[w] < inputs[w].size()) {
        tree.ReplaceWinner(inputs[w][pos[w]]);
      } else {
        tree.RetireWinner();
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * ways *
                          per_way);
}
BENCHMARK(BM_LoserTreeMerge)->Arg(2)->Arg(10)->Arg(64);

void BM_MedianTracker(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  Random rng(5);
  std::vector<Key> ring(window);
  for (auto _ : state) {
    state.PauseTiming();
    MedianTracker tracker;
    for (size_t i = 0; i < window; ++i) {
      ring[i] = static_cast<Key>(rng.Uniform(1 << 30));
      tracker.Insert(ring[i]);
    }
    state.ResumeTiming();
    for (size_t i = 0; i < 10000; ++i) {
      const size_t slot = i % window;
      tracker.Erase(ring[slot]);
      ring[slot] = static_cast<Key>(rng.Uniform(1 << 30));
      tracker.Insert(ring[slot]);
      benchmark::DoNotOptimize(tracker.Median());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_MedianTracker)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace twrs

BENCHMARK_MAIN();
