// Reproduces Figure 6.1 of the paper: merge time as a function of the
// fan-in. The paper merges 400 pre-sorted 16 MB runs on a 2010 SATA disk
// and finds a U-shaped curve with the optimum near fan-in 10: small fan-ins
// need more merge passes, large fan-ins make the disk head seek between
// many files. A page-cached SSD hides the right half of the U, so the
// simulated disk model (DESIGN.md §4) supplies the seek accounting; real
// wall-clock time is reported alongside.

#include <algorithm>

#include "bench/bench_common.h"
#include "merge/kway_merge.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  PosixEnv posix;
  const std::string dir = ScratchDir();
  const int num_runs = 60;
  const uint64_t run_records = Scaled(20000);
  printf("== Figure 6.1: merge time vs fan-in ==\n");
  printf("%d pre-sorted runs of %llu records each\n\n", num_runs,
         static_cast<unsigned long long>(run_records));

  // Pre-generate sorted runs, as the paper does.
  std::vector<RunInfo> templates;
  for (int r = 0; r < num_runs; ++r) {
    WorkloadOptions workload;
    workload.num_records = run_records;
    workload.seed = static_cast<uint64_t>(r + 1);
    auto source = MakeWorkload(Dataset::kRandom, workload);
    std::vector<Key> keys;
    Key key;
    while (source->Next(&key)) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    const std::string path = dir + "/run" + std::to_string(r);
    CheckOk(WriteAllRecords(&posix, path, keys), "write run");
    RunInfo info;
    RunSegment segment;
    segment.path = path;
    segment.count = keys.size();
    info.segments.push_back(segment);
    info.length = keys.size();
    templates.push_back(std::move(info));
  }

  TablePrinter table({"fan-in", "merge steps", "sim. minutes", "real seconds"});
  double best_sim = 1e100;
  size_t best_fan_in = 0;
  for (size_t fan_in : {2, 4, 6, 8, 10, 12, 16, 24, 40, 60}) {
    SimDiskEnv env(&posix);
    MergeOptions options;
    options.fan_in = fan_in;
    // The paper's merge buffers share the sort memory: more ways -> smaller
    // buffer per run, which is what makes wide fan-ins seek-bound.
    options.block_bytes = (1 << 22) / fan_in;
    options.temp_dir = dir;
    options.temp_prefix = "fan" + std::to_string(fan_in);
    options.remove_inputs = false;  // keep the template runs
    MergeStats stats;
    Stopwatch watch;
    CheckOk(MergeRuns(&env, templates, options, dir + "/merged", &stats),
            "merge");
    const double real_seconds = watch.ElapsedSeconds();
    const double sim_minutes = env.model().SimulatedSeconds() / 60.0;
    if (sim_minutes < best_sim) {
      best_sim = sim_minutes;
      best_fan_in = fan_in;
    }
    table.AddRow({std::to_string(fan_in), std::to_string(stats.merge_steps),
                  TablePrinter::Num(sim_minutes, 3),
                  TablePrinter::Num(real_seconds, 2)});
    CheckOk(posix.RemoveFile(dir + "/merged"), "cleanup");
  }
  table.Print(std::cout);
  printf("\nsimulated optimum at fan-in %zu (paper: 10)\n", best_fan_in);
  printf(
      "Expected shape: U-curve in simulated time — extra merge passes hurt\n"
      "below the optimum, per-stream buffer shrinkage (more seeks) above.\n");
  for (const RunInfo& run : templates) {
    CheckOk(RemoveRunFiles(&posix, run), "cleanup");
  }
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
