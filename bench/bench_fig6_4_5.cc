// Reproduces Figures 6.4 and 6.5 of the paper: run generation and total
// sorting time for MIXED input, as a function of memory (6.4) and of input
// size (6.5). The paper measures 2WRS roughly 3x faster overall because it
// generates drastically fewer runs, shrinking the merge phase; the speedup
// is sustained as the input grows.

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  const std::string dir = ScratchDir();
  printf("== Figures 6.4 / 6.5: mixed input timing, RS vs 2WRS ==\n\n");

  const uint64_t records = Scaled(1000000);
  printf("-- time vs memory (input fixed at %llu records) --\n",
         static_cast<unsigned long long>(records));
  {
    TablePrinter table({"memory", "RS total s", "2WRS total s", "RS runs",
                        "2WRS runs", "speedup", "sim speedup"});
    for (uint64_t memory : {1000, 5000, 20000, 100000}) {
      TimedSortSpec spec;
      spec.dataset = Dataset::kMixed;
      spec.records = records;
      spec.memory = static_cast<size_t>(memory);
      spec.scratch_dir = dir;
      spec.algorithm = RunGenAlgorithm::kReplacementSelection;
      const TimedSort rs = RunTimedSort(spec);
      spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
      const TimedSort twrs = RunTimedSort(spec);
      table.AddRow({std::to_string(memory),
                    TablePrinter::Num(rs.total_seconds, 3),
                    TablePrinter::Num(twrs.total_seconds, 3),
                    std::to_string(rs.num_runs), std::to_string(twrs.num_runs),
                    TablePrinter::Num(rs.total_seconds / twrs.total_seconds, 2),
                    TablePrinter::Num(
                        rs.sim_total_seconds / twrs.sim_total_seconds, 2)});
    }
    table.Print(std::cout);
  }

  const size_t memory = static_cast<size_t>(Scaled(10000));
  printf("\n-- time vs input size (memory fixed at %zu records) --\n", memory);
  {
    TablePrinter table({"records", "RS total s", "2WRS total s", "speedup",
                        "sim speedup"});
    for (uint64_t records_step : {125000, 250000, 500000, 1000000}) {
      TimedSortSpec spec;
      spec.dataset = Dataset::kMixed;
      spec.records = Scaled(records_step);
      spec.memory = memory;
      spec.scratch_dir = dir;
      spec.algorithm = RunGenAlgorithm::kReplacementSelection;
      const TimedSort rs = RunTimedSort(spec);
      spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
      const TimedSort twrs = RunTimedSort(spec);
      table.AddRow({std::to_string(Scaled(records_step)),
                    TablePrinter::Num(rs.total_seconds, 3),
                    TablePrinter::Num(twrs.total_seconds, 3),
                    TablePrinter::Num(rs.total_seconds / twrs.total_seconds, 2),
                    TablePrinter::Num(
                        rs.sim_total_seconds / twrs.sim_total_seconds, 2)});
    }
    table.Print(std::cout);
  }
  printf(
      "\nExpected shape (paper): 2WRS sustains a ~3x speedup over RS at\n"
      "every input size because the mixed dataset collapses to a handful\n"
      "of runs, making the merge phase nearly free.\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
