// Measures the sharded sort path (src/shard) against the unsharded
// pipelined path on a real-time emulated disk. ShardedSorter samples the
// input, writes range-disjoint shard files and runs a complete external
// sort per shard concurrently on the shared executor, so run generation —
// the serial bottleneck of the unsharded path — parallelizes across
// shards; each shard's final merge writes its byte range of the output
// directly (RangeMergeSink), with no concatenation pass. To keep the
// concat-vs-direct-write comparison honest after that pass's removal, the
// bench also measures a concat-equivalent byte copy of the finished output
// on the same emulated disk — the wall time the deleted pass would have
// added. Output is verified identical (count + checksum) across all
// configurations; the interesting columns are the speedup over the 0-shard
// (unsharded parallel) baseline and the avoided concat cost.

#include <algorithm>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "exec/executor.h"
#include "shard/sharded_sorter.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  const std::string dir = ScratchDir();
  const uint64_t records = Scaled(1000000);
  const size_t memory = static_cast<size_t>(Scaled(10000));
  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());

  // Same real-time emulated disk as bench_parallel_sort: ~10x the paper's
  // 2010 drive so the bench stays quick, but the sort genuinely waits out
  // its simulated I/O — which is the latency sharding hides.
  DiskModelConfig disk;
  disk.realtime = true;
  disk.seek_seconds = 0.0008;
  disk.bandwidth_bytes_per_second = 1024.0 * 1024 * 1024;

  PosixEnv posix;
  WorkloadOptions workload;
  workload.num_records = records;
  workload.seed = 1;
  const std::string input_path = dir + "/input";
  CheckOk(WriteWorkloadToFile(&posix, Dataset::kRandom, workload, input_path),
          "write workload");

  printf("== Sharded external sort vs unsharded pipelined (src/shard) ==\n");
  printf(
      "input = %llu records, memory = %zu records per sort, fan-in = 10,\n"
      "executor capacity = %zu, real-time emulated disk (%.1f ms seek, "
      "%.0f MiB/s)\n\n",
      static_cast<unsigned long long>(records), memory,
      Executor::Shared().capacity(), disk.seek_seconds * 1000,
      disk.bandwidth_bytes_per_second / (1024.0 * 1024));

  uint64_t reference_count = 0;
  KeyChecksum reference_sum;
  bool have_reference = false;
  double baseline_seconds = 0.0;

  TablePrinter table({"shards", "total s", "split s", "sort s",
                      "concat-equiv s", "speedup"});
  // shards == 0 row: the unsharded pipelined path (PR 2), the baseline the
  // acceptance criterion compares against. Deduped so a 2- or 4-core host
  // does not re-run (and double-report) a configuration.
  std::vector<size_t> shard_counts;
  for (size_t shards : {size_t{0}, size_t{2}, size_t{4}, hw}) {
    if (std::find(shard_counts.begin(), shard_counts.end(), shards) ==
        shard_counts.end()) {
      shard_counts.push_back(shards);
    }
  }
  for (size_t shards : shard_counts) {
    SimDiskEnv env(&posix, disk);
    const std::string out = dir + "/out";

    ExternalSortOptions sort_options;
    sort_options.memory_records = memory;
    sort_options.twrs = TwoWayOptions::Recommended(memory, 1);
    sort_options.temp_dir = dir + "/tmp";
    sort_options.parallel.worker_threads = hw;
    sort_options.parallel.prefetch_blocks = 2;

    double total = 0.0, split = 0.0, sort = 0.0;
    uint64_t bytes_read = 0, bytes_written = 0;
    if (shards == 0) {
      ExternalSorter sorter(&env, sort_options);
      FileRecordSource source(&env, input_path);
      ExternalSortResult result;
      Stopwatch watch;
      CheckOk(sorter.Sort(&source, out, &result), "unsharded sort");
      CheckOk(source.status(), "read input");
      total = watch.ElapsedSeconds();
      sort = result.total_seconds;
      bytes_read = result.bytes_read;
      bytes_written = result.bytes_written;
    } else {
      ShardedSortOptions sharded;
      sharded.shards = shards;
      sharded.sort = sort_options;
      ShardedSorter sorter(&env, sharded);
      ShardedSortResult result;
      CheckOk(sorter.SortFile(input_path, out, &result), "sharded sort");
      total = result.total_seconds;
      split = result.split_seconds;
      sort = result.sort_seconds;
      bytes_read = result.bytes_read;
      bytes_written = result.bytes_written;
    }

    // Concat-equivalent: one sequential read + write of the finished
    // output on the same emulated disk — the extra pass direct range
    // writes removed. Measured, not modeled, so the JSON trajectory shows
    // the real wall time a concatenating final pass would re-add.
    double concat_equiv = 0.0;
    if (shards > 0) {
      const std::string copy_path = dir + "/concat_equiv";
      Stopwatch concat_watch;
      std::unique_ptr<SequentialFile> in;
      CheckOk(env.NewSequentialFile(out, &in), "open concat-equiv input");
      std::unique_ptr<WritableFile> copy;
      CheckOk(env.NewWritableFile(copy_path, &copy),
              "create concat-equiv output");
      std::vector<uint8_t> buffer(size_t{1} << 20);
      for (;;) {
        size_t got = 0;
        CheckOk(in->Read(buffer.data(), buffer.size(), &got),
                "concat-equiv read");
        if (got > 0) {
          CheckOk(copy->Append(buffer.data(), got), "concat-equiv write");
        }
        if (got < buffer.size()) break;
      }
      CheckOk(copy->Close(), "close concat-equiv");
      concat_equiv = concat_watch.ElapsedSeconds();
      CheckOk(posix.RemoveFile(copy_path), "cleanup concat-equiv");
    }

    uint64_t count = 0;
    KeyChecksum sum;
    CheckOk(VerifySortedFile(&env, out, &count, &sum), "verify output");
    if (!have_reference) {
      reference_count = count;
      reference_sum = sum;
      have_reference = true;
      baseline_seconds = total;
    } else if (count != reference_count || !(sum == reference_sum)) {
      fprintf(stderr, "FATAL sharded output differs from baseline\n");
      abort();
    }
    CheckOk(posix.RemoveFile(out), "cleanup out");

    table.AddRow({std::to_string(shards), TablePrinter::Num(total, 3),
                  TablePrinter::Num(split, 3), TablePrinter::Num(sort, 3),
                  TablePrinter::Num(concat_equiv, 3),
                  TablePrinter::Num(
                      total > 0 ? baseline_seconds / total : 0.0, 2)});

    JsonEntry entry;
    entry.Str("label", shards == 0 ? "unsharded" : "sharded")
        .Str("io_backend", IoBackendName(IoBackend::kDefault))
        .Int("shards", shards)
        .Int("records", records)
        .Int("memory_records", memory)
        .Int("executor_capacity", Executor::Shared().capacity())
        .Num("total_seconds", total)
        .Num("split_seconds", split)
        .Num("sort_seconds", sort)
        // Direct-write total vs what the same sort plus the removed
        // concatenation pass would have cost.
        .Num("concat_equivalent_seconds", concat_equiv)
        .Num("total_with_concat_seconds", total + concat_equiv)
        .Num("speedup_vs_unsharded",
             total > 0 ? baseline_seconds / total : 0.0)
        .Num("records_per_second",
             total > 0 ? static_cast<double>(records) / total : 0.0)
        .Int("bytes_read", bytes_read)
        .Int("bytes_written", bytes_written);
    JsonReporter::Global().Add(entry);
  }
  table.Print(std::cout);
  printf(
      "\nExpected shape: > 1x speedup at 2+ shards. Sharding pays two extra\n"
      "input passes (sample + partition) but runs whole per-shard sorts —\n"
      "run generation included — concurrently on the shared executor, and\n"
      "their final merges write the output's byte ranges directly: the\n"
      "concat-equiv column is the wall time the removed pass would re-add.\n");

  // I/O backend sweep: the sharded sort on the REAL filesystem, posix vs
  // io_uring. The sharded path is the heaviest concurrent-writer workload
  // in the engine — every shard's final merge lands positioned writes in
  // the shared output — so it exercises the uring RandomRWFile slots the
  // simulated-disk rows above never touch. Identity pinned by checksum.
  printf("\n== I/O backend sweep: sharded sort, posix vs io_uring (real "
         "filesystem) ==\n");
  if (!IoUringEnv::IsSupported()) {
    printf("io_uring unavailable, sweep skipped: %s\n",
           IoUringEnv::UnsupportedReason().c_str());
    CheckOk(posix.RemoveFile(input_path), "cleanup input");
    return;
  }
  printf("\n");
  TablePrinter io_table({"backend", "shards", "total s", "split s", "sort s",
                         "vs posix"});
  uint64_t io_ref_count = 0;
  KeyChecksum io_ref_sum;
  bool io_have_ref = false;
  double io_posix_seconds = 0.0;
  const size_t io_shards = std::min<size_t>(4, hw);
  for (IoBackend backend : {IoBackend::kPosix, IoBackend::kUring}) {
    const std::string out = dir + "/out_backend";
    ExternalSortOptions sort_options;
    sort_options.memory_records = memory;
    sort_options.twrs = TwoWayOptions::Recommended(memory, 1);
    sort_options.temp_dir = dir + "/tmp";
    sort_options.parallel.worker_threads = hw;
    sort_options.parallel.prefetch_blocks = 2;
    sort_options.io_backend = backend;
    ShardedSortOptions sharded;
    sharded.shards = io_shards;
    sharded.sort = sort_options;
    ShardedSorter sorter(&posix, sharded);
    ShardedSortResult result;
    CheckOk(sorter.SortFile(input_path, out, &result), "backend sharded sort");
    uint64_t count = 0;
    KeyChecksum sum;
    CheckOk(VerifySortedFile(&posix, out, &count, &sum), "verify output");
    if (!io_have_ref) {
      io_ref_count = count;
      io_ref_sum = sum;
      io_have_ref = true;
      io_posix_seconds = result.total_seconds;
    } else if (count != io_ref_count || !(sum == io_ref_sum)) {
      fprintf(stderr, "FATAL %s sharded output differs from posix baseline\n",
              IoBackendName(backend));
      abort();
    }
    CheckOk(posix.RemoveFile(out), "cleanup out");
    io_table.AddRow(
        {IoBackendName(backend), std::to_string(io_shards),
         TablePrinter::Num(result.total_seconds, 3),
         TablePrinter::Num(result.split_seconds, 3),
         TablePrinter::Num(result.sort_seconds, 3),
         TablePrinter::Num(result.total_seconds > 0
                               ? io_posix_seconds / result.total_seconds
                               : 0.0, 2)});

    JsonEntry entry;
    entry.Str("label", "sharded-backend")
        .Str("io_backend", IoBackendName(backend))
        .Int("shards", io_shards)
        .Int("records", records)
        .Int("memory_records", memory)
        .Int("executor_capacity", Executor::Shared().capacity())
        .Num("total_seconds", result.total_seconds)
        .Num("split_seconds", result.split_seconds)
        .Num("sort_seconds", result.sort_seconds)
        .Num("records_per_second",
             result.total_seconds > 0
                 ? static_cast<double>(records) / result.total_seconds
                 : 0.0)
        .Int("bytes_read", result.bytes_read)
        .Int("bytes_written", result.bytes_written);
    JsonReporter::Global().Add(entry);
  }
  io_table.Print(std::cout);
  printf(
      "\nExpected shape: uring >= 1.0x vs posix — positioned shard writes\n"
      "batch through each file's ring instead of a sink pool handoff.\n");
  CheckOk(posix.RemoveFile(input_path), "cleanup input");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
