/// Per-kernel scalar-vs-AVX2 microbenchmarks for the src/simd layer.
///
/// Every kernel is timed through its fixed-level internal twins on
/// identical inputs, the outputs are cross-checked byte-identical before
/// any number is reported, and the results flow into the standard --json
/// report (schema_version 2, diffable with tools/bench_diff.py). On hosts
/// without AVX2 only the scalar rows are emitted.
///
///   bench_simd [--json BENCH_simd.json] [--profile NAME]

#include <algorithm>
#include <random>
#include <vector>

#include "bench/bench_common.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/table_printer.h"

namespace twrs {
namespace bench {
namespace {

constexpr size_t kKeys = 1 << 16;
constexpr uint64_t kSeed = 20100802;  // the paper's VLDB year + figure

std::vector<Key> RandomKeys(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Key> keys(n);
  for (Key& k : keys) k = static_cast<Key>(rng());
  return keys;
}

/// Median-of-5 wall time of one repetition of `fn` (each sample runs
/// `reps` back-to-back calls), keeping a single noisy sample from
/// polluting the speedup ratios.
template <typename Fn>
double TimeSeconds(Fn&& fn, int reps) {
  double samples[5];
  for (double& sample : samples) {
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) fn();
    sample = watch.ElapsedSeconds() / reps;
  }
  std::sort(samples, samples + 5);
  return samples[2];
}

struct KernelTiming {
  const char* kernel;
  uint64_t records;
  double scalar_seconds = 0.0;
  double avx2_seconds = 0.0;  // 0 when the host lacks AVX2
};

void Report(const KernelTiming& timing, TablePrinter* table) {
  JsonEntry scalar;
  scalar.Str("kernel", timing.kernel)
      .Str("dispatch", "scalar")
      .Int("records", timing.records)
      .Num("wall_seconds", timing.scalar_seconds)
      .Num("keys_per_second",
           static_cast<double>(timing.records) / timing.scalar_seconds);
  JsonReporter::Global().Add(scalar);
  const bool has_avx2 = timing.avx2_seconds > 0.0;
  const double speedup =
      has_avx2 ? timing.scalar_seconds / timing.avx2_seconds : 0.0;
  if (has_avx2) {
    JsonEntry avx2;
    avx2.Str("kernel", timing.kernel)
        .Str("dispatch", "avx2")
        .Int("records", timing.records)
        .Num("wall_seconds", timing.avx2_seconds)
        .Num("keys_per_second",
             static_cast<double>(timing.records) / timing.avx2_seconds)
        .Num("speedup", speedup);
    JsonReporter::Global().Add(avx2);
  }
  table->AddRow({timing.kernel, std::to_string(timing.records),
                 TablePrinter::Num(timing.scalar_seconds * 1e6, 1),
                 has_avx2 ? TablePrinter::Num(timing.avx2_seconds * 1e6, 1)
                          : "-",
                 has_avx2 ? TablePrinter::Num(speedup, 2) + "x" : "-"});
}

void RequireIdentical(bool identical, const char* kernel) {
  if (!identical) {
    fprintf(stderr, "FATAL: %s avx2 output differs from scalar\n", kernel);
    abort();
  }
}

KernelTiming BenchSortKeysBlock(bool avx2) {
  const std::vector<Key> master = RandomKeys(kKeys, kSeed);
  std::vector<Key> work(kKeys);
  KernelTiming timing{"sort_block", kKeys, 0.0, 0.0};
  timing.scalar_seconds = TimeSeconds(
      [&] {
        work = master;
        simd::internal::SortKeysBlockScalar(work.data(), work.size());
      },
      20);
  if (avx2) {
    const std::vector<Key> expected = work;
    timing.avx2_seconds = TimeSeconds(
        [&] {
          work = master;
          simd::internal::SortKeysBlockAvx2(work.data(), work.size());
        },
        20);
    RequireIdentical(work == expected, timing.kernel);
  }
  return timing;
}

KernelTiming BenchPartition(bool avx2) {
  const std::vector<Key> keys = RandomKeys(kKeys, kSeed + 1);
  std::vector<Key> splitters = RandomKeys(31, kSeed + 2);
  std::sort(splitters.begin(), splitters.end());
  std::vector<uint32_t> bucket(kKeys);
  KernelTiming timing{"partition", kKeys, 0.0, 0.0};
  timing.scalar_seconds = TimeSeconds(
      [&] {
        simd::internal::PartitionBySplittersScalar(
            keys.data(), keys.size(), splitters.data(), splitters.size(),
            bucket.data());
      },
      20);
  if (avx2) {
    const std::vector<uint32_t> expected = bucket;
    timing.avx2_seconds = TimeSeconds(
        [&] {
          simd::internal::PartitionBySplittersAvx2(
              keys.data(), keys.size(), splitters.data(), splitters.size(),
              bucket.data());
        },
        20);
    RequireIdentical(bucket == expected, timing.kernel);
  }
  return timing;
}

KernelTiming BenchEncode(bool avx2) {
  const std::vector<Key> keys = RandomKeys(kKeys, kSeed + 3);
  std::vector<uint8_t> bytes(kKeys * kRecordBytes);
  KernelTiming timing{"encode", kKeys, 0.0, 0.0};
  timing.scalar_seconds = TimeSeconds(
      [&] {
        simd::internal::EncodeKeysBatchScalar(keys.data(), keys.size(),
                                              bytes.data());
      },
      200);
  if (avx2) {
    const std::vector<uint8_t> expected = bytes;
    timing.avx2_seconds = TimeSeconds(
        [&] {
          simd::internal::EncodeKeysBatchAvx2(keys.data(), keys.size(),
                                              bytes.data());
        },
        200);
    RequireIdentical(bytes == expected, timing.kernel);
  }
  return timing;
}

KernelTiming BenchDecode(bool avx2) {
  const std::vector<Key> source = RandomKeys(kKeys, kSeed + 4);
  std::vector<uint8_t> bytes(kKeys * kRecordBytes);
  simd::internal::EncodeKeysBatchScalar(source.data(), source.size(),
                                        bytes.data());
  std::vector<Key> keys(kKeys);
  KernelTiming timing{"decode", kKeys, 0.0, 0.0};
  timing.scalar_seconds = TimeSeconds(
      [&] {
        simd::internal::DecodeKeysBatchScalar(bytes.data(), keys.size(),
                                              keys.data());
      },
      200);
  if (avx2) {
    const std::vector<Key> expected = keys;
    timing.avx2_seconds = TimeSeconds(
        [&] {
          simd::internal::DecodeKeysBatchAvx2(bytes.data(), keys.size(),
                                              keys.data());
        },
        200);
    RequireIdentical(keys == expected, timing.kernel);
  }
  return timing;
}

/// MinIndexN is a per-selection primitive, so one repetition slides an
/// 8-wide window over the key array — the shape of an 8-way merge's inner
/// loop — and folds the picked indices into a checksum.
KernelTiming BenchMinIndex(bool avx2) {
  const std::vector<Key> keys = RandomKeys(kKeys, kSeed + 5);
  constexpr size_t kWindow = 8;
  const size_t selections = keys.size() - kWindow + 1;
  size_t scalar_sum = 0;
  KernelTiming timing{"min_index", selections, 0.0, 0.0};
  timing.scalar_seconds = TimeSeconds(
      [&] {
        size_t sum = 0;
        for (size_t i = 0; i + kWindow <= keys.size(); ++i) {
          sum += simd::internal::MinIndexNScalar(keys.data() + i, kWindow);
        }
        scalar_sum = sum;
      },
      20);
  if (avx2) {
    size_t avx2_sum = 0;
    timing.avx2_seconds = TimeSeconds(
        [&] {
          size_t sum = 0;
          for (size_t i = 0; i + kWindow <= keys.size(); ++i) {
            sum += simd::internal::MinIndexNAvx2(keys.data() + i, kWindow);
          }
          avx2_sum = sum;
        },
        20);
    RequireIdentical(avx2_sum == scalar_sum, timing.kernel);
  }
  return timing;
}

int Main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  const bool avx2 = simd::CpuSupportsAvx2();
  printf("simd dispatch: %s (avx2 compiled: %s, TWRS_FORCE_SCALAR honored "
         "by dispatched call sites, twins pinned here)\n",
         simd::DispatchLevelName(simd::ActiveDispatchLevel()),
         simd::internal::Avx2Compiled() ? "yes" : "no");

  TablePrinter table({"Kernel", "Records", "Scalar us", "AVX2 us",
                      "Speedup"});
  Report(BenchSortKeysBlock(avx2), &table);
  Report(BenchPartition(avx2), &table);
  Report(BenchEncode(avx2), &table);
  Report(BenchDecode(avx2), &table);
  Report(BenchMinIndex(avx2), &table);
  table.Print(std::cout);

  JsonReporter::Global().Flush();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) { return twrs::bench::Main(argc, argv); }
