// Quickstart: sort a file of records that does not fit in memory.
//
//   ./quickstart [num_records]
//
// Generates a shuffled input file, sorts it with the full 2WRS external
// mergesort pipeline under a small memory budget, verifies the output, and
// prints phase statistics.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "io/posix_env.h"
#include "merge/external_sorter.h"
#include "util/checksum.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  const uint64_t num_records = argc > 1 ? strtoull(argv[1], nullptr, 10)
                                        : 1000000;
  twrs::PosixEnv env;
  const char* dir = "/tmp/twrs_quickstart";
  if (!env.CreateDirIfMissing(dir).ok()) return 1;

  // 1. Create an unsorted input file (1M random records by default).
  twrs::WorkloadOptions workload;
  workload.num_records = num_records;
  workload.seed = 42;
  const std::string input_path = std::string(dir) + "/input";
  twrs::Status status = twrs::WriteWorkloadToFile(
      &env, twrs::Dataset::kRandom, workload, input_path);
  if (!status.ok()) {
    fprintf(stderr, "generate input: %s\n", status.ToString().c_str());
    return 1;
  }
  printf("input: %" PRIu64 " records (%.1f MiB) at %s\n", num_records,
         static_cast<double>(num_records * twrs::kRecordBytes) / (1 << 20),
         input_path.c_str());

  // 2. Configure the sorter: 64Ki records of memory (a 512 KiB budget),
  //    2WRS run generation with the paper's recommended configuration.
  twrs::ExternalSortOptions options;
  options.algorithm = twrs::RunGenAlgorithm::kTwoWayReplacementSelection;
  options.memory_records = 64 * 1024;
  options.twrs = twrs::TwoWayOptions::Recommended(options.memory_records);
  options.fan_in = 10;
  options.temp_dir = std::string(dir) + "/tmp";
  twrs::ExternalSorter sorter(&env, options);

  // 3. Sort.
  twrs::FileRecordSource source(&env, input_path);
  const std::string output_path = std::string(dir) + "/sorted";
  twrs::ExternalSortResult result;
  status = sorter.Sort(&source, output_path, &result);
  if (!status.ok()) {
    fprintf(stderr, "sort: %s\n", status.ToString().c_str());
    return 1;
  }

  // 4. Verify: the output must be sorted and a permutation of the input.
  uint64_t count = 0;
  twrs::KeyChecksum checksum;
  status = twrs::VerifySortedFile(&env, output_path, &count, &checksum);
  if (!status.ok()) {
    fprintf(stderr, "verify: %s\n", status.ToString().c_str());
    return 1;
  }

  printf("sorted %" PRIu64 " records into %s\n", count, output_path.c_str());
  printf("  runs generated : %" PRIu64 " (avg length %.0f = %.2fx memory)\n",
         result.run_gen.num_runs(), result.run_gen.AverageRunLength(),
         result.run_gen.AverageRunLengthRelative(options.memory_records));
  printf("  run generation : %.3f s\n", result.run_gen_seconds);
  printf("  merge phase    : %.3f s (%" PRIu64 " merge steps)\n",
         result.merge_seconds, result.merge.merge_steps);
  printf("  total          : %.3f s\n", result.total_seconds);
  printf("output verified: sorted and a permutation of the input\n");
  return 0;
}
