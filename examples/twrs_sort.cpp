// twrs_sort: command-line external sort for record files (8-byte
// little-endian keys), exposing the library's full configuration surface.
//
//   twrs_sort [options] <input> <output>
//   twrs_sort --generate <dataset> --records N <output>
//
// Options:
//   --algorithm rs|2wrs|lss|batched   run generation algorithm (default 2wrs)
//   --memory N                        memory budget in records (default 64Ki)
//   --fan-in N                        merge fan-in (default 10)
//   --temp-dir PATH                   scratch directory (default /tmp/twrs_sort)
//   --buffers FRACTION                2WRS buffer fraction (default 0.02)
//   --input-heuristic NAME            random|alternate|mean|median|useful|balancing
//   --output-heuristic NAME           random|alternate|useful|balancing|mindistance
//   --threads N                       N > 0 enables the pipelined path
//                                     (0 = serial, default); workers come
//                                     from the shared executor — size it
//                                     with --executor-threads
//   --prefetch N                      read-ahead blocks per merge input
//   --io-backend posix|uring|auto     file I/O backend (default posix).
//                                     `uring` requires a kernel with
//                                     io_uring and a TWRS_WITH_URING
//                                     build and fails loudly otherwise;
//                                     `auto` degrades to posix silently
//   --shards N|auto                   range shards sorted concurrently on the
//                                     shared executor (1 = unsharded, default);
//                                     `auto` plans the count from the input
//                                     size, --memory and the executor load
//   --final-merge-threads N|auto      partitions of the final merge pass
//                                     (1 = serial, default): N partial merges
//                                     run concurrently, each writing its own
//                                     byte range of the output; `auto` takes
//                                     the planner's choice (or the executor
//                                     capacity when --shards is fixed).
//                                     Implies the pooled path (--threads >= 1)
//   --executor-threads N              capacity of the process-wide shared
//                                     executor (0 = hardware concurrency)
//   --limit K                         top-K selection: write only the K
//                                     smallest (or largest, with
//                                     --order desc) keys, still ascending.
//                                     Small K runs the bounded dual-heap
//                                     selector; large K sorts normally and
//                                     prunes the merge. Unsharded only
//   --order asc|desc                  which end of the key space --limit
//                                     keeps (default asc = smallest)
//   --verify                          check the output after sorting
//   --generate DATASET                write a workload instead of sorting:
//                                     sorted|reverse|alternating|random|mixed|imbalanced
//   --records N                       records for --generate (default 1M)
//   --seed N                          workload seed (default 1)

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>

#include "core/record.h"
#include "examples/cli_util.h"
#include "exec/executor.h"
#include "io/env.h"
#include "merge/external_sorter.h"
#include "service/shard_planner.h"
#include "shard/sharded_sorter.h"
#include "workload/generators.h"

namespace {

int Usage() {
  fprintf(stderr,
          "usage: twrs_sort [options] <input> <output>\n"
          "       twrs_sort --generate <dataset> --records N <output>\n"
          "run `head -45 examples/twrs_sort.cpp` for the option list\n");
  return 2;
}

using twrs::examples::ParseCount;

bool ParseAlgorithm(const std::string& name, twrs::RunGenAlgorithm* out) {
  if (name == "rs") {
    *out = twrs::RunGenAlgorithm::kReplacementSelection;
  } else if (name == "2wrs") {
    *out = twrs::RunGenAlgorithm::kTwoWayReplacementSelection;
  } else if (name == "lss") {
    *out = twrs::RunGenAlgorithm::kLoadSortStore;
  } else if (name == "batched") {
    *out = twrs::RunGenAlgorithm::kBatchedReplacementSelection;
  } else {
    return false;
  }
  return true;
}

bool ParseInputHeuristic(const std::string& name, twrs::InputHeuristic* out) {
  for (int i = 0; i < twrs::kNumInputHeuristics; ++i) {
    const auto h = static_cast<twrs::InputHeuristic>(i);
    std::string candidate = twrs::InputHeuristicName(h);
    for (char& c : candidate) c = static_cast<char>(tolower(c));
    if (candidate == name) {
      *out = h;
      return true;
    }
  }
  return false;
}

bool ParseOutputHeuristic(const std::string& name,
                          twrs::OutputHeuristic* out) {
  for (int i = 0; i < twrs::kNumOutputHeuristics; ++i) {
    const auto h = static_cast<twrs::OutputHeuristic>(i);
    std::string candidate = twrs::OutputHeuristicName(h);
    for (char& c : candidate) c = static_cast<char>(tolower(c));
    if (candidate == name) {
      *out = h;
      return true;
    }
  }
  return false;
}

bool ParseDataset(const std::string& name, twrs::Dataset* out) {
  if (name == "sorted") {
    *out = twrs::Dataset::kSorted;
  } else if (name == "reverse") {
    *out = twrs::Dataset::kReverseSorted;
  } else if (name == "alternating") {
    *out = twrs::Dataset::kAlternating;
  } else if (name == "random") {
    *out = twrs::Dataset::kRandom;
  } else if (name == "mixed") {
    *out = twrs::Dataset::kMixed;
  } else if (name == "imbalanced") {
    *out = twrs::Dataset::kMixedImbalanced;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  twrs::ExternalSortOptions options;
  options.memory_records = 64 * 1024;
  options.temp_dir = "/tmp/twrs_sort";
  twrs::TwoWayOptions twrs_options =
      twrs::TwoWayOptions::Recommended(options.memory_records);
  uint64_t shards = 1;
  bool shards_auto = false;
  uint64_t final_merge_threads = 1;
  bool final_merge_auto = false;
  uint64_t executor_threads = 0;
  bool verify = false;
  bool generate = false;
  twrs::Dataset dataset = twrs::Dataset::kRandom;
  uint64_t records = 1000000;
  uint64_t seed = 1;
  std::string positional[2];
  int positionals = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--algorithm") {
      const char* v = next();
      if (v == nullptr || !ParseAlgorithm(v, &options.algorithm)) {
        return Usage();
      }
    } else if (arg == "--memory") {
      uint64_t v = 0;
      if (!ParseCount(next(), &v)) return Usage();
      options.memory_records = v;
    } else if (arg == "--fan-in") {
      uint64_t v = 0;
      if (!ParseCount(next(), &v)) return Usage();
      options.fan_in = v;
    } else if (arg == "--temp-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.temp_dir = v;
    } else if (arg == "--buffers") {
      const char* v = next();
      if (v == nullptr) return Usage();
      twrs_options.buffer_fraction = atof(v);
    } else if (arg == "--input-heuristic") {
      const char* v = next();
      if (v == nullptr ||
          !ParseInputHeuristic(v, &twrs_options.input_heuristic)) {
        return Usage();
      }
    } else if (arg == "--output-heuristic") {
      const char* v = next();
      if (v == nullptr ||
          !ParseOutputHeuristic(v, &twrs_options.output_heuristic)) {
        return Usage();
      }
    } else if (arg == "--threads") {
      uint64_t v = 0;
      if (!ParseCount(next(), &v) || v > 1024) return Usage();
      options.parallel.worker_threads = v;
    } else if (arg == "--prefetch") {
      uint64_t v = 0;
      if (!ParseCount(next(), &v) || v > 1024) return Usage();
      options.parallel.prefetch_blocks = v;
    } else if (arg == "--io-backend") {
      const char* v = next();
      if (v == nullptr || !twrs::ParseIoBackend(v, &options.io_backend)) {
        return Usage();
      }
    } else if (arg == "--shards") {
      const char* v = next();
      if (v != nullptr && std::string(v) == "auto") {
        shards_auto = true;
      } else {
        uint64_t n = 0;
        if (!ParseCount(v, &n) || n > 1024) return Usage();
        if (n == 0) {
          fprintf(stderr, "--shards must be at least 1 (got 0)\n");
          return 2;
        }
        shards = n;
      }
    } else if (arg == "--final-merge-threads") {
      const char* v = next();
      if (v != nullptr && std::string(v) == "auto") {
        final_merge_auto = true;
      } else {
        uint64_t n = 0;
        if (!ParseCount(v, &n) || n > 1024) return Usage();
        if (n == 0) {
          fprintf(stderr,
                  "--final-merge-threads must be at least 1 (got 0); use "
                  "`auto` for the planned count\n");
          return 2;
        }
        final_merge_threads = n;
      }
    } else if (arg == "--executor-threads") {
      uint64_t v = 0;
      if (!ParseCount(next(), &v) || v > 1024) return Usage();
      executor_threads = v;
    } else if (arg == "--limit") {
      if (!ParseCount(next(), &options.limit)) return Usage();
    } else if (arg == "--order") {
      const char* v = next();
      if (v == nullptr) return Usage();
      const std::string order = v;
      if (order == "asc") {
        options.order = twrs::SelectOrder::kAscending;
      } else if (order == "desc") {
        options.order = twrs::SelectOrder::kDescending;
      } else {
        return Usage();
      }
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--generate") {
      const char* v = next();
      if (v == nullptr || !ParseDataset(v, &dataset)) return Usage();
      generate = true;
    } else if (arg == "--records") {
      if (!ParseCount(next(), &records)) return Usage();
    } else if (arg == "--seed") {
      if (!ParseCount(next(), &seed)) return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage();
    } else if (positionals < 2) {
      positional[positionals++] = arg;
    } else {
      return Usage();
    }
  }

  // Resolve the I/O backend up front: an explicit `--io-backend uring` on
  // a kernel or build without io_uring is a configuration error and fails
  // here with one line, before any file is touched.
  twrs::IoBackend resolved_backend = twrs::IoBackend::kPosix;
  {
    twrs::Status s = twrs::ResolveIoBackend(options.io_backend,
                                            &resolved_backend);
    if (!s.ok()) {
      fprintf(stderr, "twrs_sort: %s\n", s.ToString().c_str());
      return 2;
    }
    if (resolved_backend == twrs::IoBackend::kDefault) {
      resolved_backend = twrs::IoBackend::kPosix;
    }
  }
  twrs::Env* env = twrs::Env::Default(resolved_backend);
  options.io_backend = twrs::IoBackend::kDefault;  // env already resolved

  if (generate) {
    if (positionals != 1) return Usage();
    twrs::WorkloadOptions workload;
    workload.num_records = records;
    workload.seed = seed;
    twrs::Status s =
        twrs::WriteWorkloadToFile(env, dataset, workload, positional[0]);
    if (!s.ok()) {
      fprintf(stderr, "generate: %s\n", s.ToString().c_str());
      return 1;
    }
    printf("wrote %llu %s records to %s\n",
           static_cast<unsigned long long>(records),
           twrs::DatasetName(dataset), positional[0].c_str());
    return 0;
  }

  if (positionals != 2) return Usage();
  printf("io backend: %s\n", twrs::IoBackendName(resolved_backend));
  if (options.limit > 0 && (shards > 1 || shards_auto)) {
    fprintf(stderr,
            "--limit runs unsharded; drop --shards (a top-K output is not "
            "the fixed-size file the per-shard ranges assume)\n");
    return 2;
  }
  twrs_options.memory_records = options.memory_records;
  options.twrs = twrs_options;
  if (executor_threads > 0 &&
      !twrs::Executor::ConfigureShared(executor_threads)) {
    fprintf(stderr,
            "--executor-threads: the shared executor already started\n");
    return 2;
  }
  // Fail on an unusable scratch directory now, with an actionable message,
  // instead of with an I/O error minutes into the sort.
  twrs::Status s = twrs::PreflightTempDir(env, options.temp_dir);
  if (!s.ok()) {
    fprintf(stderr, "twrs_sort: %s\n", s.ToString().c_str());
    return 1;
  }
  if (shards_auto) {
    twrs::ShardPlanInputs plan_inputs;
    uint64_t input_bytes = 0;
    s = env->GetFileSize(positional[0], &input_bytes);
    if (!s.ok()) {
      fprintf(stderr, "twrs_sort: %s\n", s.ToString().c_str());
      return 1;
    }
    plan_inputs.input_records = input_bytes / twrs::kRecordBytes;
    plan_inputs.memory_records = options.memory_records;
    plan_inputs.executor_capacity = twrs::Executor::Shared().capacity();
    plan_inputs.executor_inflight = twrs::Executor::Shared().inflight_tasks();
    const twrs::ShardPlan plan = twrs::PlanShardCount(plan_inputs);
    shards = plan.shards;
    if (final_merge_auto) final_merge_threads = plan.final_merge_threads;
    printf("--shards auto: planned %llu shards (%s)\n",
           static_cast<unsigned long long>(shards),
           twrs::ShardPlanLimitName(plan.limit));
  } else if (final_merge_auto) {
    // No shard plan to borrow from: spread the executor over the fixed
    // shard count.
    final_merge_threads =
        std::max<uint64_t>(1, twrs::Executor::Shared().capacity() / shards);
  }
  if (final_merge_auto) {
    printf("--final-merge-threads auto: %llu partitions per final merge\n",
           static_cast<unsigned long long>(final_merge_threads));
  }
  options.parallel.final_merge_threads =
      static_cast<size_t>(final_merge_threads);
  if (final_merge_threads > 1 && options.parallel.worker_threads == 0) {
    // The partitioned final merge runs on the shared executor's pool;
    // worker_threads > 0 switches pool borrowing on (the pool's size stays
    // the executor's capacity either way).
    options.parallel.worker_threads = 1;
  }
  if (shards > 1) {
    twrs::ShardedSortOptions sharded;
    sharded.shards = shards;
    sharded.sample_seed = seed;
    sharded.sort = options;
    twrs::ShardedSorter sorter(env, sharded);
    twrs::ShardedSortResult result;
    s = sorter.SortFile(positional[0], positional[1], &result);
    if (!s.ok()) {
      fprintf(stderr, "sort: %s\n", s.ToString().c_str());
      return 1;
    }
    printf("%s sharded: %llu records over %zu shards, "
           "split %.3fs + sort %.3fs (direct range writes) = %.3fs\n",
           twrs::RunGenAlgorithmName(options.algorithm),
           static_cast<unsigned long long>(result.output_records),
           result.shard_records.size(), result.split_seconds,
           result.sort_seconds, result.total_seconds);
  } else {
    twrs::ExternalSorter sorter(env, options);
    twrs::FileRecordSource source(env, positional[0]);
    twrs::ExternalSortResult result;
    s = sorter.Sort(&source, positional[1], &result);
    if (!s.ok()) {
      fprintf(stderr, "sort: %s\n", s.ToString().c_str());
      return 1;
    }
    if (!source.status().ok()) {
      fprintf(stderr, "read input: %s\n",
              source.status().ToString().c_str());
      return 1;
    }
    if (options.limit > 0) {
      printf("top-%llu (%s) via %s: %llu of %llu records kept\n",
             static_cast<unsigned long long>(options.limit),
             twrs::SelectOrderName(options.order),
             twrs::TopKStrategyName(result.topk_strategy),
             static_cast<unsigned long long>(result.output_records),
             static_cast<unsigned long long>(result.run_gen.total_records));
      if (result.topk_strategy == twrs::TopKStrategy::kRunPruningMerge) {
        printf("pruned: %llu runs, %llu records never read\n",
               static_cast<unsigned long long>(result.merge.runs_pruned),
               static_cast<unsigned long long>(result.merge.records_pruned));
      }
    }
    printf("%s: %llu records, %llu runs (avg %.2fx memory), "
           "gen %.3fs + merge %.3fs = %.3fs\n",
           twrs::RunGenAlgorithmName(options.algorithm),
           static_cast<unsigned long long>(result.output_records),
           static_cast<unsigned long long>(result.run_gen.num_runs()),
           result.run_gen.AverageRunLengthRelative(options.memory_records),
           result.run_gen_seconds, result.merge_seconds,
           result.total_seconds);
  }
  if (verify) {
    uint64_t count = 0;
    s = twrs::VerifySortedFile(env, positional[1], &count, nullptr);
    if (!s.ok()) {
      fprintf(stderr, "verify: %s\n", s.ToString().c_str());
      return 1;
    }
    printf("verified: %llu records sorted\n",
           static_cast<unsigned long long>(count));
  }
  return 0;
}
