// The two external-sorting paradigms of Chapter 2, side by side: external
// mergesort (2WRS run generation + k-way merging) versus distribution
// (bucket) sort. Distribution sort needs no merge phase but suffers when
// the data clusters; mergesort is insensitive to clustering.
//
//   ./distribution_vs_merge [num_records]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "distribution/distribution_sort.h"
#include "io/posix_env.h"
#include "merge/external_sorter.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "workload/generators.h"

namespace {

// 90% of the keys live in 0.1% of the key range: the clustering hazard of
// §2.2 that uniform bucket ranges handle poorly.
class ClusteredSource : public twrs::RecordSource {
 public:
  ClusteredSource(uint64_t records, uint64_t seed)
      : records_(records), rng_(seed) {}

  bool Next(twrs::Key* key) override {
    if (i_ == records_) return false;
    ++i_;
    if (rng_.Uniform(10) < 9) {
      *key = static_cast<twrs::Key>(rng_.Uniform(1000));  // the hot cluster
    } else {
      *key = static_cast<twrs::Key>(rng_.Uniform(1000000000));
    }
    return true;
  }

 private:
  uint64_t records_;
  uint64_t i_ = 0;
  twrs::Random rng_;
};

std::unique_ptr<twrs::RecordSource> MakeSource(bool clustered, uint64_t n) {
  if (clustered) return std::make_unique<ClusteredSource>(n, 3);
  twrs::WorkloadOptions workload;
  workload.num_records = n;
  workload.seed = 3;
  return twrs::MakeWorkload(twrs::Dataset::kRandom, workload);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t records = argc > 1 ? strtoull(argv[1], nullptr, 10) : 1000000;
  twrs::PosixEnv env;
  const char* dir = "/tmp/twrs_paradigms";
  if (!env.CreateDirIfMissing(dir).ok()) return 1;
  const size_t memory = 32 * 1024;

  printf("external mergesort vs distribution sort, %" PRIu64
         " records, %zu-record memory\n\n",
         records, memory);
  printf("%-22s %14s %14s %10s\n", "workload", "mergesort s",
         "distribution s", "verified");

  for (const bool clustered : {false, true}) {
    // Mergesort paradigm.
    double merge_seconds = 0.0;
    {
      auto source = MakeSource(clustered, records);
      twrs::ExternalSortOptions options;
      options.memory_records = memory;
      options.twrs = twrs::TwoWayOptions::Recommended(memory);
      options.temp_dir = std::string(dir) + "/merge_tmp";
      twrs::ExternalSorter sorter(&env, options);
      twrs::Stopwatch watch;
      twrs::ExternalSortResult result;
      if (!sorter.Sort(source.get(), std::string(dir) + "/merge_out", &result)
               .ok()) {
        return 1;
      }
      merge_seconds = watch.ElapsedSeconds();
    }

    // Distribution paradigm.
    double dist_seconds = 0.0;
    twrs::DistributionSortStats dist_stats;
    {
      auto source = MakeSource(clustered, records);
      twrs::DistributionSortOptions options;
      options.memory_records = memory;
      options.num_buckets = 16;
      options.temp_dir = std::string(dir) + "/dist_tmp";
      twrs::Stopwatch watch;
      if (!twrs::DistributionSort(&env, source.get(), options,
                                  std::string(dir) + "/dist_out", &dist_stats)
               .ok()) {
        return 1;
      }
      dist_seconds = watch.ElapsedSeconds();
    }

    // Both outputs must be identical sorted files.
    uint64_t merge_count = 0;
    uint64_t dist_count = 0;
    twrs::KeyChecksum merge_sum;
    twrs::KeyChecksum dist_sum;
    if (!twrs::VerifySortedFile(&env, std::string(dir) + "/merge_out",
                                &merge_count, &merge_sum)
             .ok() ||
        !twrs::VerifySortedFile(&env, std::string(dir) + "/dist_out",
                                &dist_count, &dist_sum)
             .ok()) {
      return 1;
    }
    const bool same =
        merge_count == dist_count && merge_sum == dist_sum;
    printf("%-22s %14.3f %14.3f %10s\n",
           clustered ? "clustered (90% hot)" : "uniform random",
           merge_seconds, dist_seconds, same ? "yes" : "MISMATCH");
    if (clustered) {
      printf(
          "  (distribution sort needed %" PRIu64
          " distribution passes, depth %" PRIu64
          ", %" PRIu64 " mergesort fallbacks on the hot cluster)\n",
          dist_stats.distribution_passes, dist_stats.max_depth_reached,
          dist_stats.fallback_sorts);
    }
  }
  return 0;
}
