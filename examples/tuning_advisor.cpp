// Autonomic configuration advisor (the paper's §7.1 future-work idea).
//
// A query optimizer that knows — or samples — the distribution feeding a
// sort operator can pick the 2WRS configuration that minimizes runs. This
// example samples a prefix of the input, classifies its shape with simple
// trend statistics, applies the configuration rules of §5.3, and shows the
// resulting run counts against the untuned default.
//
//   ./tuning_advisor [dataset 0-5] [num_records]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/run_sink.h"
#include "core/two_way_replacement_selection.h"
#include "workload/generators.h"

namespace {

enum class Shape { kSorted, kReverseSorted, kTrendMix, kUnstructured };

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kSorted:
      return "ascending trend";
    case Shape::kReverseSorted:
      return "descending trend";
    case Shape::kTrendMix:
      return "mixed/alternating trends";
    case Shape::kUnstructured:
      return "unstructured (random-like)";
  }
  return "?";
}

// Classifies a sample by the balance of rising vs falling steps and by how
// often the direction flips.
Shape ClassifySample(const std::vector<twrs::Key>& sample) {
  if (sample.size() < 3) return Shape::kUnstructured;
  uint64_t up = 0;
  uint64_t down = 0;
  for (size_t i = 1; i < sample.size(); ++i) {
    if (sample[i] > sample[i - 1]) {
      ++up;
    } else if (sample[i] < sample[i - 1]) {
      ++down;
    }
  }
  const double total = static_cast<double>(up + down);
  if (total == 0) return Shape::kUnstructured;
  const double up_share = up / total;
  if (up_share > 0.95) return Shape::kSorted;
  if (up_share < 0.05) return Shape::kReverseSorted;
  // Interleaved monotone trends flip direction nearly every step; random
  // data flips about half the time but its steps have no long-range
  // structure. Separate them by the autocorrelation of step directions at
  // lag 2: interleaved trends repeat direction at lag 2 far more often.
  uint64_t lag2_same = 0;
  uint64_t lag2_total = 0;
  for (size_t i = 3; i < sample.size(); ++i) {
    const bool dir_now = sample[i] > sample[i - 1];
    const bool dir_lag2 = sample[i - 2] > sample[i - 3];
    lag2_same += dir_now == dir_lag2 ? 1 : 0;
    ++lag2_total;
  }
  const double lag2_share = static_cast<double>(lag2_same) / lag2_total;
  return lag2_share > 0.8 ? Shape::kTrendMix : Shape::kUnstructured;
}

// §5.3's recommendations, specialized by the detected shape.
twrs::TwoWayOptions Advise(Shape shape, size_t memory) {
  twrs::TwoWayOptions options = twrs::TwoWayOptions::Recommended(memory);
  switch (shape) {
    case Shape::kSorted:
    case Shape::kReverseSorted:
      // Configuration-insensitive (§5.2.1/§5.2.2): spend no memory on
      // buffers beyond the minimum.
      options.buffer_fraction = 0.0002;
      break;
    case Shape::kTrendMix:
      // §5.2.5/§5.2.6 optima: both buffers, generous size, Mean input.
      options.buffer_fraction = 0.2;
      options.input_heuristic = twrs::InputHeuristic::kMean;
      options.output_heuristic = twrs::OutputHeuristic::kRandom;
      break;
    case Shape::kUnstructured:
      // §5.2.4: buffers only cost run length on random data.
      options.buffer_fraction = 0.0002;
      break;
  }
  return options;
}

uint64_t CountRuns(const twrs::TwoWayOptions& options, twrs::Dataset dataset,
                   const twrs::WorkloadOptions& workload) {
  auto source = twrs::MakeWorkload(dataset, workload);
  twrs::TwoWayReplacementSelection generator(options);
  twrs::CountingRunSink sink;
  twrs::RunGenStats stats;
  if (!generator.Generate(source.get(), &sink, &stats).ok()) return 0;
  return stats.num_runs();
}

}  // namespace

int main(int argc, char** argv) {
  const int dataset_index = argc > 1 ? atoi(argv[1]) : 4;  // default: mixed
  const uint64_t num_records =
      argc > 2 ? strtoull(argv[2], nullptr, 10) : 400000;
  if (dataset_index < 0 || dataset_index >= twrs::kNumDatasets) {
    fprintf(stderr, "dataset must be 0..%d\n", twrs::kNumDatasets - 1);
    return 1;
  }
  const auto dataset = static_cast<twrs::Dataset>(dataset_index);
  const size_t memory = 8192;

  twrs::WorkloadOptions workload;
  workload.num_records = num_records;
  workload.seed = 17;

  // Sample a prefix, as an optimizer with intermediate-result statistics
  // would (§7.1).
  const size_t sample_size = 4096;
  std::vector<twrs::Key> sample;
  {
    auto source = twrs::MakeWorkload(dataset, workload);
    twrs::Key key;
    while (sample.size() < sample_size && source->Next(&key)) {
      sample.push_back(key);
    }
  }
  const Shape shape = ClassifySample(sample);
  printf("input          : %s (%" PRIu64 " records)\n",
         twrs::DatasetName(dataset), num_records);
  printf("detected shape : %s (from a %zu-record sample)\n", ShapeName(shape),
         sample.size());

  const twrs::TwoWayOptions advised = Advise(shape, memory);
  printf("advised config : buffers %.2f%%, %s/%s\n",
         100.0 * advised.buffer_fraction,
         twrs::InputHeuristicName(advised.input_heuristic),
         twrs::OutputHeuristicName(advised.output_heuristic));

  const uint64_t default_runs =
      CountRuns(twrs::TwoWayOptions::Recommended(memory), dataset, workload);
  const uint64_t advised_runs = CountRuns(advised, dataset, workload);
  printf("\n%-24s %10s %14s\n", "", "runs", "avg run/memory");
  printf("%-24s %10" PRIu64 " %14.2f\n", "default (2% Mean/Random)",
         default_runs,
         default_runs ? static_cast<double>(num_records) /
                            (static_cast<double>(default_runs) * memory)
                      : 0.0);
  printf("%-24s %10" PRIu64 " %14.2f\n", "advised", advised_runs,
         advised_runs ? static_cast<double>(num_records) /
                            (static_cast<double>(advised_runs) * memory)
                      : 0.0);
  return 0;
}
