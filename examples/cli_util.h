#ifndef TWRS_EXAMPLES_CLI_UTIL_H_
#define TWRS_EXAMPLES_CLI_UTIL_H_

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace twrs {
namespace examples {

/// Strict non-negative integer parse shared by the CLI drivers: rejects
/// signs, trailing junk and overflow instead of wrapping (strtoull
/// happily parses "-1" to 2^64-1, which then e.g. makes ThreadPool try
/// to reserve 2^64-1 workers).
inline bool ParseCount(const char* v, uint64_t* out) {
  if (v == nullptr || *v == '\0') return false;
  for (const char* p = v; *p != '\0'; ++p) {
    if (!isdigit(static_cast<unsigned char>(*p))) return false;
  }
  errno = 0;
  const unsigned long long parsed = strtoull(v, nullptr, 10);
  if (errno == ERANGE) return false;
  *out = parsed;
  return true;
}

}  // namespace examples
}  // namespace twrs

#endif  // TWRS_EXAMPLES_CLI_UTIL_H_
