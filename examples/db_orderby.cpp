// Database ORDER BY ... LIMIT scenario (the paper's §7 motivation, plus
// the selection layer on top).
//
// A table stores two anticorrelated columns A and B — think `price` and
// `discount`, or the paper's example of rows physically ordered by A while
// a query wants ORDER BY B. Scanning the table in A-order feeds the sort
// operator a reverse-sorted stream of B values. Most such queries carry a
// LIMIT, and the engine answers it three ways:
//
//   full sort + truncate   sort everything, keep the first K (the naive
//                          plan every strategy must beat)
//   dual-heap selection    one bounded pass: a K-capacity DoubleHeap keeps
//                          the current top K, no runs, no merge
//   run-pruning merge      normal run generation, then a merge that clamps
//                          every run to its first K records and prunes
//                          runs the sampled bounds prove irrelevant
//
// All three produce byte-identical output; the point of this example is
// their radically different costs.
//
//   ./db_orderby [num_rows] [k]

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/record_source.h"
#include "io/posix_env.h"
#include "io/record_io.h"
#include "merge/external_sorter.h"
#include "select/topk.h"
#include "util/random.h"

namespace {

// Streams column B of a table whose rows arrive physically ordered by
// column A, with B anticorrelated to A (B ~ C - A plus per-row jitter).
class AnticorrelatedColumnScan : public twrs::RecordSource {
 public:
  AnticorrelatedColumnScan(uint64_t rows, uint64_t seed)
      : rows_(rows), rng_(seed) {}

  bool Next(twrs::Key* key) override {
    if (row_ == rows_) return false;
    const twrs::Key a = static_cast<twrs::Key>(row_) * 1000;  // scan order
    const twrs::Key jitter = static_cast<twrs::Key>(rng_.Uniform(900));
    *key = static_cast<twrs::Key>(rows_) * 1000 - a + jitter;  // column B
    ++row_;
    return true;
  }

 private:
  uint64_t rows_;
  uint64_t row_ = 0;
  twrs::Random rng_;
};

struct PlanCost {
  const char* name = "";
  twrs::ExternalSortResult sort;
  std::string output;
  bool ok = false;
};

// Runs `SELECT b FROM t ORDER BY b LIMIT k` with a pinned strategy.
// limit == 0 is the full-sort baseline (truncated to K afterwards by the
// comparison below, the way a naive plan would).
PlanCost RunQuery(twrs::Env* env, const char* name, uint64_t rows,
                  uint64_t limit, twrs::TopKStrategy strategy,
                  const std::string& dir) {
  twrs::ExternalSortOptions options;
  options.memory_records = 32 * 1024;  // the operator's memory quantum
  options.twrs = twrs::TwoWayOptions::Recommended(options.memory_records);
  options.temp_dir = dir + "/tmp_" + name;
  options.limit = limit;
  options.topk_strategy = strategy;
  twrs::ExternalSorter sorter(env, options);

  AnticorrelatedColumnScan scan(rows, /*seed=*/7);
  PlanCost result;
  result.name = name;
  result.output = dir + "/orderby_" + name;
  twrs::Status status = sorter.Sort(&scan, result.output, &result.sort);
  if (!status.ok()) {
    fprintf(stderr, "%s: sort: %s\n", name, status.ToString().c_str());
    return result;
  }
  status = twrs::VerifySortedFile(env, result.output, nullptr, nullptr);
  if (!status.ok()) {
    fprintf(stderr, "%s: verify: %s\n", name, status.ToString().c_str());
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t rows = argc > 1 ? strtoull(argv[1], nullptr, 10) : 2000000;
  const uint64_t k =
      argc > 2 ? strtoull(argv[2], nullptr, 10) : std::max<uint64_t>(
                                                      1, rows / 1000);
  twrs::PosixEnv env;
  const char* dir = "/tmp/twrs_orderby";
  if (!env.CreateDirIfMissing(dir).ok()) return 1;

  printf("SELECT b FROM t ORDER BY b LIMIT %" PRIu64
         "  -- rows stored in a-order, b ~ -a\n",
         k);
  printf("table: %" PRIu64 " rows, sort memory: 32Ki records\n\n", rows);

  const PlanCost full =
      RunQuery(&env, "full-sort", rows, /*limit=*/0,
               twrs::TopKStrategy::kAuto, dir);
  const PlanCost dual = RunQuery(&env, "dual-heap", rows, k,
                                 twrs::TopKStrategy::kDualHeap, dir);
  const PlanCost pruned = RunQuery(&env, "run-pruning", rows, k,
                                   twrs::TopKStrategy::kRunPruningMerge, dir);
  if (!full.ok || !dual.ok || !pruned.ok) return 1;

  // The LIMIT plans must return exactly the first K records of the full
  // sort — compare bytes, not just counts.
  std::vector<twrs::Key> reference, got;
  if (!twrs::ReadAllRecords(&env, full.output, &reference).ok()) return 1;
  reference.resize(std::min<size_t>(reference.size(), k));
  for (const PlanCost* plan : {&dual, &pruned}) {
    if (!twrs::ReadAllRecords(&env, plan->output, &got).ok()) return 1;
    if (got != reference) {
      fprintf(stderr, "%s: output differs from full sort truncated to K\n",
              plan->name);
      return 1;
    }
  }

  printf("%-28s %14s %14s %14s\n", "", "full sort", "dual-heap",
         "run-pruning");
  printf("%-28s %14" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
         "records written", full.sort.output_records,
         dual.sort.output_records, pruned.sort.output_records);
  printf("%-28s %14" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n", "runs generated",
         full.sort.run_gen.num_runs(), dual.sort.run_gen.num_runs(),
         pruned.sort.run_gen.num_runs());
  printf("%-28s %14" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
         "MiB read", full.sort.bytes_read >> 20, dual.sort.bytes_read >> 20,
         pruned.sort.bytes_read >> 20);
  printf("%-28s %14" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
         "MiB written", full.sort.bytes_written >> 20,
         dual.sort.bytes_written >> 20, pruned.sort.bytes_written >> 20);
  printf("%-28s %14s %14" PRIu64 " %14" PRIu64 "\n", "runs pruned", "-",
         dual.sort.merge.runs_pruned, pruned.sort.merge.runs_pruned);
  printf("%-28s %14.3f %14.3f %14.3f\n", "total seconds",
         full.sort.total_seconds, dual.sort.total_seconds,
         pruned.sort.total_seconds);

  printf("\nAll three plans verified byte-identical on the first %" PRIu64
         " keys.\n"
         "The dual-heap plan did no run I/O at all; the run-pruning plan\n"
         "read back only the slice of each run that could reach the top "
         "%" PRIu64 ".\n",
         k, k);
  return 0;
}
