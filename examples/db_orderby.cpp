// Database ORDER BY scenario (the paper's §7 motivation).
//
// A table stores two anticorrelated columns A and B — think `price` and
// `discount`, or the paper's example of rows physically ordered by A while
// a query wants ORDER BY B. Scanning the table in A-order feeds the sort
// operator a reverse-sorted stream of B values: classic Replacement
// Selection degrades to memory-sized runs, while 2WRS captures the
// descending trend in its BottomHeap and emits a single run (Theorem 4),
// which makes the merge phase a plain copy.
//
//   ./db_orderby [num_rows]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/record_source.h"
#include "io/posix_env.h"
#include "merge/external_sorter.h"
#include "util/random.h"

namespace {

// Streams column B of a table whose rows arrive physically ordered by
// column A, with B anticorrelated to A (B ~ C - A plus per-row jitter).
class AnticorrelatedColumnScan : public twrs::RecordSource {
 public:
  AnticorrelatedColumnScan(uint64_t rows, uint64_t seed)
      : rows_(rows), rng_(seed) {}

  bool Next(twrs::Key* key) override {
    if (row_ == rows_) return false;
    const twrs::Key a = static_cast<twrs::Key>(row_) * 1000;  // scan order
    const twrs::Key jitter = static_cast<twrs::Key>(rng_.Uniform(900));
    *key = static_cast<twrs::Key>(rows_) * 1000 - a + jitter;  // column B
    ++row_;
    return true;
  }

 private:
  uint64_t rows_;
  uint64_t row_ = 0;
  twrs::Random rng_;
};

struct QueryResult {
  twrs::ExternalSortResult sort;
  bool ok = false;
};

QueryResult RunOrderBy(twrs::Env* env, twrs::RunGenAlgorithm algorithm,
                       uint64_t rows, const std::string& dir) {
  twrs::ExternalSortOptions options;
  options.algorithm = algorithm;
  options.memory_records = 32 * 1024;  // the operator's memory quantum
  options.twrs = twrs::TwoWayOptions::Recommended(options.memory_records);
  options.temp_dir = dir + "/tmp_" +
                     std::string(twrs::RunGenAlgorithmName(algorithm));
  twrs::ExternalSorter sorter(env, options);

  AnticorrelatedColumnScan scan(rows, /*seed=*/7);
  QueryResult result;
  const std::string out =
      dir + "/orderby_" + twrs::RunGenAlgorithmName(algorithm);
  twrs::Status status = sorter.Sort(&scan, out, &result.sort);
  if (!status.ok()) {
    fprintf(stderr, "sort: %s\n", status.ToString().c_str());
    return result;
  }
  status = twrs::VerifySortedFile(env, out, nullptr, nullptr);
  if (!status.ok()) {
    fprintf(stderr, "verify: %s\n", status.ToString().c_str());
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t rows = argc > 1 ? strtoull(argv[1], nullptr, 10) : 2000000;
  twrs::PosixEnv env;
  const char* dir = "/tmp/twrs_orderby";
  if (!env.CreateDirIfMissing(dir).ok()) return 1;

  printf("SELECT * FROM t ORDER BY b  -- rows stored in a-order, b ~ -a\n");
  printf("table: %" PRIu64 " rows, sort memory: 32Ki records\n\n", rows);

  const QueryResult rs =
      RunOrderBy(&env, twrs::RunGenAlgorithm::kReplacementSelection, rows,
                 dir);
  const QueryResult twrs_result = RunOrderBy(
      &env, twrs::RunGenAlgorithm::kTwoWayReplacementSelection, rows, dir);
  if (!rs.ok || !twrs_result.ok) return 1;

  printf("%-28s %12s %12s\n", "", "RS", "2WRS");
  printf("%-28s %12" PRIu64 " %12" PRIu64 "\n", "runs generated",
         rs.sort.run_gen.num_runs(), twrs_result.sort.run_gen.num_runs());
  printf("%-28s %12" PRIu64 " %12" PRIu64 "\n", "merge steps",
         rs.sort.merge.merge_steps, twrs_result.sort.merge.merge_steps);
  printf("%-28s %12" PRIu64 " %12" PRIu64 "\n", "records moved in merge",
         rs.sort.merge.records_written,
         twrs_result.sort.merge.records_written);
  printf("%-28s %12.3f %12.3f\n", "total seconds", rs.sort.total_seconds,
         twrs_result.sort.total_seconds);
  printf("\nBoth outputs verified sorted. 2WRS turned the anticorrelated\n");
  printf("scan into %" PRIu64 " run(s); RS needed %" PRIu64
         " memory-sized runs and a full\nmerge pass over every record.\n",
         twrs_result.sort.run_gen.num_runs(), rs.sort.run_gen.num_runs());
  return 0;
}
