// twrs_sortd: batch driver for the SortService — the "daemon view" of the
// library. Generates a fleet of workload files, submits them all to one
// SortService and reports the admission/governance behavior: every job's
// lifecycle, the (possibly shrunk) memory lease it ran under, the shard
// count the planner picked, and the service/governor counters.
//
//   twrs_sortd [options]
//
// Options:
//   --jobs N          jobs to submit (default 8)
//   --records N       records per job input (default 100000)
//   --concurrency N   max concurrently running jobs (default 2)
//   --queue-depth N   admission queue depth (default 64)
//   --memory N        nominal memory ask per job, records (default 64Ki)
//   --budget N        governor capacity in records
//                     (default 2x --memory: two full jobs' worth)
//   --min-lease N     smallest lease the governor grants (default 4096)
//   --shards N|auto   per-job shard policy (default auto)
//   --limit K         submit top-K selection jobs: each output holds only
//                     the K smallest keys; the service plans them
//                     unsharded with a selection-aware (smaller) lease ask
//   --max-shards N    adaptive planner ceiling (default 16)
//   --io-backend posix|uring|auto
//                     file I/O backend for every job (default posix).
//                     `uring` fails with one line when the kernel or
//                     build lacks io_uring; `auto` degrades to posix
//   --temp-dir PATH   scratch root (default /tmp/twrs_sortd)
//   --seed N          workload seed base (default 1)
//   --cancel N        cancel the last N submitted jobs mid-flight
//   --verify          verify each completed output is sorted
//   --status-interval MS
//                     live mode: repaint a per-job progress table every
//                     MS milliseconds while jobs run (ANSI repaint on a
//                     terminal, plain appended frames otherwise)
//   --metrics-json PATH
//                     dump the service's full metrics registry (latency
//                     histograms and counters) as JSON to PATH at exit

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "examples/cli_util.h"
#include "exec/executor.h"
#include "io/env.h"
#include "service/sort_service.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace {

int Usage() {
  fprintf(stderr,
          "usage: twrs_sortd [options]\n"
          "run `head -45 examples/twrs_sortd.cpp` for the option list\n");
  return 2;
}

using twrs::examples::ParseCount;

bool Terminal(twrs::JobState state) {
  return state == twrs::JobState::kDone || state == twrs::JobState::kFailed ||
         state == twrs::JobState::kCancelled;
}

double Mib(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Live status mode: polls every handle until all jobs are terminal,
/// repainting a per-job progress table each tick. Every frame — the
/// cursor-up erase of the previous table, the permanent one-line records
/// of newly finished jobs, and the repainted table — is assembled into
/// one string and written by this single writer with one fwrite+fflush,
/// so concurrent job output can never interleave inside a repaint. On a
/// non-terminal stdout the ANSI erase is skipped and frames just append.
void WatchJobs(const std::vector<twrs::JobHandle>& handles,
               uint64_t interval_ms) {
  const bool tty = isatty(fileno(stdout)) != 0;
  std::vector<bool> reported(handles.size(), false);
  size_t last_lines = 0;
  for (;;) {
    bool all_done = true;
    std::string finished_lines;
    twrs::TablePrinter table({"job", "phase", "state", "ingested", "merged",
                              "MiB read", "MiB written", "done %"});
    for (size_t j = 0; j < handles.size(); ++j) {
      const twrs::JobState state = handles[j].state();
      const twrs::JobProgress p = handles[j].Progress();
      if (Terminal(state)) {
        if (!reported[j]) {
          reported[j] = true;
          const twrs::SortJobStats stats = handles[j].stats();
          finished_lines += "job " + std::to_string(j) + ": " +
                            twrs::JobStateName(state) + " in " +
                            twrs::TablePrinter::Num(stats.total_seconds, 3) +
                            " s (" + std::to_string(p.records_ingested) +
                            " records)\n";
        }
      } else {
        all_done = false;
      }
      // Ingest and merge each touch every record once, so the two
      // counters together advance 0 -> 2*total over the job's life.
      const double pct =
          p.total_records > 0
              ? 100.0 *
                    static_cast<double>(p.records_ingested + p.records_merged) /
                    (2.0 * static_cast<double>(p.total_records))
              : 0.0;
      table.AddRow({std::to_string(j), twrs::SortProgressPhaseName(p.phase),
                    twrs::JobStateName(state),
                    std::to_string(p.records_ingested),
                    std::to_string(p.records_merged),
                    twrs::TablePrinter::Num(Mib(p.bytes_read), 1),
                    twrs::TablePrinter::Num(Mib(p.bytes_written), 1),
                    twrs::TablePrinter::Num(pct, 1)});
    }
    std::ostringstream body;
    table.Print(body);
    const std::string rendered = body.str();
    const size_t lines =
        static_cast<size_t>(std::count(rendered.begin(), rendered.end(), '\n'));

    std::string frame;
    if (tty && last_lines > 0) {
      frame += "\033[" + std::to_string(last_lines) + "A\033[J";
    }
    frame += finished_lines;
    frame += rendered;
    fwrite(frame.data(), 1, frame.size(), stdout);
    fflush(stdout);
    last_lines = lines;

    if (all_done) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t jobs = 8;
  uint64_t records = 100000;
  uint64_t concurrency = 2;
  uint64_t queue_depth = 64;
  uint64_t memory = 64 * 1024;
  uint64_t budget = 0;  // 0 = 2x memory
  uint64_t min_lease = 4096;
  uint64_t shards = twrs::kAutoShards;
  bool shards_auto = true;
  uint64_t max_shards = 16;
  uint64_t seed = 1;
  uint64_t limit = 0;
  uint64_t cancel_last = 0;
  bool verify = false;
  uint64_t status_interval_ms = 0;
  std::string metrics_json;
  std::string temp_dir = "/tmp/twrs_sortd";
  twrs::IoBackend io_backend = twrs::IoBackend::kDefault;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--jobs") {
      if (!ParseCount(next(), &jobs) || jobs == 0 || jobs > 4096) {
        return Usage();
      }
    } else if (arg == "--records") {
      if (!ParseCount(next(), &records)) return Usage();
    } else if (arg == "--concurrency") {
      if (!ParseCount(next(), &concurrency) || concurrency == 0) {
        return Usage();
      }
    } else if (arg == "--queue-depth") {
      if (!ParseCount(next(), &queue_depth)) return Usage();
    } else if (arg == "--memory") {
      if (!ParseCount(next(), &memory) || memory == 0) return Usage();
    } else if (arg == "--budget") {
      if (!ParseCount(next(), &budget)) return Usage();
    } else if (arg == "--min-lease") {
      if (!ParseCount(next(), &min_lease)) return Usage();
    } else if (arg == "--shards") {
      const char* v = next();
      if (v != nullptr && std::string(v) == "auto") {
        shards_auto = true;
      } else {
        if (!ParseCount(v, &shards) || shards == 0 || shards > 1024) {
          return Usage();
        }
        shards_auto = false;
      }
    } else if (arg == "--max-shards") {
      if (!ParseCount(next(), &max_shards) || max_shards == 0) {
        return Usage();
      }
    } else if (arg == "--io-backend") {
      const char* v = next();
      if (v == nullptr || !twrs::ParseIoBackend(v, &io_backend)) {
        return Usage();
      }
    } else if (arg == "--temp-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      temp_dir = v;
    } else if (arg == "--seed") {
      if (!ParseCount(next(), &seed)) return Usage();
    } else if (arg == "--limit") {
      if (!ParseCount(next(), &limit)) return Usage();
    } else if (arg == "--cancel") {
      if (!ParseCount(next(), &cancel_last)) return Usage();
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--status-interval") {
      if (!ParseCount(next(), &status_interval_ms) ||
          status_interval_ms == 0) {
        return Usage();
      }
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      metrics_json = v;
    } else {
      fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage();
    }
  }

  // Resolve the backend once for the whole fleet; an explicit `uring` on
  // an unsupported kernel/build fails here, before any input is written.
  twrs::IoBackend resolved_backend = twrs::IoBackend::kPosix;
  {
    twrs::Status bs = twrs::ResolveIoBackend(io_backend, &resolved_backend);
    if (!bs.ok()) {
      fprintf(stderr, "twrs_sortd: %s\n", bs.ToString().c_str());
      return 2;
    }
    if (resolved_backend == twrs::IoBackend::kDefault) {
      resolved_backend = twrs::IoBackend::kPosix;
    }
  }
  printf("io backend: %s\n", twrs::IoBackendName(resolved_backend));
  twrs::Env* env_ptr = twrs::Env::Default(resolved_backend);
  twrs::Env& env = *env_ptr;
  twrs::Status s = twrs::PreflightTempDir(&env, temp_dir);
  if (!s.ok()) {
    fprintf(stderr, "twrs_sortd: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::string work_dir =
      temp_dir + "/" + twrs::UniqueScratchDirName("sortd");
  s = env.CreateDirIfMissing(work_dir);
  if (!s.ok()) {
    fprintf(stderr, "twrs_sortd: %s\n", s.ToString().c_str());
    return 1;
  }

  // A fleet of inputs across the workload datasets, so the planner and
  // governor see heterogeneous jobs.
  const twrs::Dataset rotation[] = {
      twrs::Dataset::kRandom, twrs::Dataset::kMixed,
      twrs::Dataset::kReverseSorted, twrs::Dataset::kMixedImbalanced};
  std::vector<std::string> inputs(jobs), outputs(jobs);
  for (uint64_t j = 0; j < jobs; ++j) {
    inputs[j] = work_dir + "/input_" + std::to_string(j);
    outputs[j] = work_dir + "/output_" + std::to_string(j);
    twrs::WorkloadOptions workload;
    workload.num_records = records;
    workload.seed = seed + j;
    s = twrs::WriteWorkloadToFile(&env, rotation[j % 4], workload, inputs[j]);
    if (!s.ok()) {
      fprintf(stderr, "twrs_sortd: generate input %llu: %s\n",
              static_cast<unsigned long long>(j), s.ToString().c_str());
      return 1;
    }
  }

  twrs::SortServiceOptions service_options;
  service_options.max_concurrent_jobs = concurrency;
  service_options.max_queue_depth = queue_depth;
  service_options.max_shards = max_shards;
  service_options.governor.capacity_records =
      budget > 0 ? budget : 2 * memory;
  service_options.governor.min_lease_records = min_lease;

  printf("twrs_sortd: %llu jobs x %llu records, concurrency %llu, "
         "budget %zu records (nominal ask %llu), shards %s\n",
         static_cast<unsigned long long>(jobs),
         static_cast<unsigned long long>(records),
         static_cast<unsigned long long>(concurrency),
         service_options.governor.capacity_records,
         static_cast<unsigned long long>(memory),
         shards_auto ? "auto" : std::to_string(shards).c_str());

  std::vector<twrs::JobHandle> handles(jobs);
  {
    twrs::SortService service(&env, service_options);
    for (uint64_t j = 0; j < jobs; ++j) {
      twrs::SortJobSpec spec;
      spec.input_path = inputs[j];
      spec.output_path = outputs[j];
      spec.sort.memory_records = memory;
      spec.sort.twrs = twrs::TwoWayOptions::Recommended(memory, seed + j);
      spec.sort.temp_dir = work_dir;
      spec.sort.limit = limit;
      spec.shards = shards_auto ? twrs::kAutoShards : shards;
      spec.sample_seed = seed + j;
      s = service.Submit(spec, &handles[j]);
      if (!s.ok()) {
        fprintf(stderr, "twrs_sortd: submit job %llu: %s\n",
                static_cast<unsigned long long>(j), s.ToString().c_str());
        return 1;
      }
    }
    for (uint64_t j = jobs - std::min(cancel_last, jobs); j < jobs; ++j) {
      handles[j].Cancel();
    }
    if (status_interval_ms > 0) {
      // Live mode: poll and repaint until every job is terminal. The
      // handles' terminal states make the Waits below immediate.
      WatchJobs(handles, status_interval_ms);
    }
    for (uint64_t j = 0; j < jobs; ++j) {
      // Per-job outcomes are reported from the stats table below, where a
      // failed or cancelled job shows up in its `state` column.
      TWRS_IGNORE_STATUS(handles[j].Wait());
    }

    const twrs::SortServiceStats stats = service.Stats();
    const twrs::MemoryGovernorStats governor = service.GovernorStats();
    twrs::TablePrinter table({"job", "state", "shards", "plan", "lease",
                              "queue s", "total s", "records"});
    for (uint64_t j = 0; j < jobs; ++j) {
      const twrs::SortJobStats job = handles[j].stats();
      // lease column: granted[->downsized]/nominal; the arrow appears when
      // the job returned part of its budget at merge begin.
      std::string lease = std::to_string(job.granted_memory_records);
      if (job.downsized_memory_records > 0) {
        lease += "->" + std::to_string(job.downsized_memory_records);
      }
      lease += "/" + std::to_string(job.nominal_memory_records);
      table.AddRow({std::to_string(j), twrs::JobStateName(job.state),
                    std::to_string(job.planned_shards),
                    twrs::ShardPlanLimitName(job.plan_limit), lease,
                    twrs::TablePrinter::Num(job.queue_seconds, 3),
                    twrs::TablePrinter::Num(job.total_seconds, 3),
                    std::to_string(job.result.output_records)});
    }
    table.Print(std::cout);
    printf("service: %llu submitted, %llu completed, %llu failed, "
           "%llu cancelled, %llu rejected; peak queue %zu, peak running "
           "%zu, shrunk admissions %llu\n",
           static_cast<unsigned long long>(stats.submitted),
           static_cast<unsigned long long>(stats.completed),
           static_cast<unsigned long long>(stats.failed),
           static_cast<unsigned long long>(stats.cancelled),
           static_cast<unsigned long long>(stats.rejected),
           stats.peak_queued, stats.peak_running,
           static_cast<unsigned long long>(stats.shrunk_admissions));
    printf("governor: %zu/%zu records reserved at shutdown, %llu leases "
           "(%llu shrunk, %llu downsized mid-flight)\n",
           governor.reserved_records, governor.capacity_records,
           static_cast<unsigned long long>(governor.total_leases),
           static_cast<unsigned long long>(governor.shrunk_leases),
           static_cast<unsigned long long>(governor.downsized_leases));
    if (!metrics_json.empty() && service.metrics() != nullptr) {
      std::ofstream out(metrics_json);
      if (out) {
        out << service.metrics()->ToJson() << "\n";
        printf("metrics registry dumped to %s\n", metrics_json.c_str());
      } else {
        fprintf(stderr, "twrs_sortd: cannot write metrics to %s\n",
                metrics_json.c_str());
      }
    }
  }

  int rc = 0;
  for (uint64_t j = 0; j < jobs; ++j) {
    const twrs::SortJobStats job = handles[j].stats();
    if (job.state == twrs::JobState::kFailed) {
      fprintf(stderr, "twrs_sortd: job %llu failed: %s\n",
              static_cast<unsigned long long>(j),
              job.status.ToString().c_str());
      rc = 1;
      continue;
    }
    if (job.state != twrs::JobState::kDone) continue;
    if (verify) {
      const uint64_t expected =
          limit > 0 ? std::min<uint64_t>(limit, records) : records;
      uint64_t count = 0;
      s = twrs::VerifySortedFile(&env, outputs[j], &count, nullptr);
      if (!s.ok() || count != expected) {
        fprintf(stderr, "twrs_sortd: verify job %llu: %s (count %llu)\n",
                static_cast<unsigned long long>(j), s.ToString().c_str(),
                static_cast<unsigned long long>(count));
        rc = 1;
      }
    }
  }
  if (verify && rc == 0) {
    printf("verified: every completed output is sorted\n");
  }
  twrs::RemoveTreeBestEffort(&env, work_dir);
  return rc;
}
